//! E1 — the central-registry bottleneck (claim C5, client/server side).
//!
//! Closed-loop clients issue real SOAP `find_service` queries at a
//! simulated UDDI registry with finite service capacity. As the client
//! population grows past the registry's capacity, throughput saturates
//! and latency grows without bound — the scalability critique in
//! Section II of the paper ("the number of server entities does not
//! grow proportionately with the overall number of nodes").

use crate::common::{mean, percentile_f64};
use std::cell::RefCell;
use std::rc::Rc;
use wsp_http::{HttpSimServer, Request, Router, SimHttpClient};
use wsp_simnet::{Context, Dur, LinkSpec, Node, NodeEvent, NodeId, SimNet, Time};
use wsp_uddi::registry_handler;

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    pub clients: usize,
    pub completed: u64,
    pub throughput_rps: f64,
    pub mean_ms: f64,
    pub p99_ms: f64,
}

/// A closed-loop client: issues a query, waits for the answer, issues
/// the next — until the horizon.
struct ClosedLoopClient {
    registry: NodeId,
    http: SimHttpClient,
    horizon: Time,
    sent_at: Option<(u64, Time)>,
    latencies: Rc<RefCell<Vec<f64>>>,
    request_body: Vec<u8>,
}

impl ClosedLoopClient {
    fn fire(&mut self, ctx: &mut Context<'_, String>) {
        let request = Request::post(
            "/uddi",
            wsp_soap::constants::CONTENT_TYPE,
            self.request_body.clone(),
        );
        let corr = self.http.send(ctx, self.registry, request);
        self.sent_at = Some((corr, ctx.now()));
    }
}

impl Node<String> for ClosedLoopClient {
    fn handle(&mut self, ctx: &mut Context<'_, String>, event: NodeEvent<String>) {
        match event {
            NodeEvent::Start => self.fire(ctx),
            NodeEvent::Message { msg, .. } => {
                if let Some((corr, response)) = self.http.accept(&msg) {
                    if let Some((expected, at)) = self.sent_at {
                        if corr == expected && response.is_success() {
                            self.latencies
                                .borrow_mut()
                                .push((ctx.now() - at).as_micros() as f64 / 1000.0);
                        }
                    }
                    if ctx.now() < self.horizon {
                        self.fire(ctx);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Run one cell of the sweep.
pub fn run(clients: usize, horizon_secs: u64, service_ms: u64, workers: u32, seed: u64) -> E1Row {
    let mut net: SimNet<String> = SimNet::new(seed);
    net.set_default_link(LinkSpec::lan());

    // A real registry with a record in it, behind the capacity model.
    let registry = wsp_uddi::Registry::new();
    registry.save_service(
        wsp_uddi::BusinessService::new("", "bench", "EchoService")
            .with_binding(wsp_uddi::BindingTemplate::new("", "http://provider/Echo")),
    );
    let router = Router::new();
    router.deploy("uddi", registry_handler(registry));
    let server = net.add_node(Box::new(HttpSimServer::new(
        router,
        Dur::millis(service_ms),
        workers,
    )));

    let horizon = Time::secs(horizon_secs);
    let latencies = Rc::new(RefCell::new(Vec::new()));
    let query_body =
        wsp_soap::Envelope::request(wsp_uddi::ServiceQuery::by_name("Echo%").to_element())
            .to_xml()
            .into_bytes();
    for _ in 0..clients {
        net.add_node(Box::new(ClosedLoopClient {
            registry: server,
            http: SimHttpClient::new(),
            horizon,
            sent_at: None,
            latencies: latencies.clone(),
            request_body: query_body.clone(),
        }));
    }
    net.run_until(horizon + Dur::secs(5)); // drain in-flight work
    let latencies = latencies.borrow();
    let completed = latencies.len() as u64;
    E1Row {
        clients,
        completed,
        throughput_rps: completed as f64 / horizon_secs as f64,
        mean_ms: mean(&latencies),
        p99_ms: percentile_f64(&latencies, 99.0),
    }
}

/// The full sweep reported in EXPERIMENTS.md.
pub fn sweep(seed: u64) -> Vec<E1Row> {
    [1, 2, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .map(|clients| run(clients, 10, 5, 1, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_saturates_and_latency_explodes() {
        let light = run(1, 5, 5, 1, 7);
        let heavy = run(64, 5, 5, 1, 7);
        // Capacity is 1000ms/5ms = 200 rps. One zero-think-time client
        // gets close (service + 2 link hops per cycle) but its latency
        // is the bare 5ms + RTT; 64 clients pin throughput at capacity
        // while queueing inflates latency ~clients-fold.
        assert!(light.throughput_rps < 185.0, "{light:?}");
        assert!(
            heavy.throughput_rps > 185.0 && heavy.throughput_rps < 215.0,
            "{heavy:?}"
        );
        assert!(
            heavy.mean_ms > light.mean_ms * 10.0,
            "{light:?} vs {heavy:?}"
        );
    }

    #[test]
    fn more_workers_raise_capacity() {
        let one = run(64, 5, 5, 1, 7);
        let four = run(64, 5, 5, 4, 7);
        assert!(
            four.throughput_rps > one.throughput_rps * 2.0,
            "{one:?} vs {four:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(8, 3, 5, 1, 42);
        let b = run(8, 3, 5, 1, 42);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_ms, b.mean_ms);
    }
}

//! A2 (ablation) — soft-state refresh under churn.
//!
//! P2PS adverts are soft state: rendezvous caches expire them, and
//! publishers re-broadcast periodically. This ablation fixes the churn
//! level (80 % rendezvous availability) and sweeps the refresh
//! interval, showing that refresh — not luck — is what E3's P2P
//! resilience comes from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsp_p2ps::{build_overlay, P2psQuery, PeerCommand, PeerEvent, ServiceAdvertisement};
use wsp_simnet::{ChurnModel, Dur, LinkSpec, SimNet, Time, Topology};

/// One ablation cell.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// `None` = publish once, never refresh.
    pub refresh_secs: Option<u64>,
    pub success_rate: f64,
}

/// Run one refresh setting at 80 % rendezvous availability.
pub fn run(refresh_secs: Option<u64>, seed: u64) -> A2Row {
    let groups = 8usize;
    let group_size = 6usize;
    let queries = 30usize;

    let mut net: SimNet<String> = SimNet::new(seed);
    net.set_default_link(LinkSpec::lan());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA2);
    let (topology, rendezvous) = Topology::rendezvous_groups(groups, group_size, 3, &mut rng);
    let refresh = refresh_secs.map(Dur::secs);
    let (_dir, handles) = build_overlay(&mut net, &topology, &rendezvous, refresh);

    let publisher = &handles[1];
    let advert = ServiceAdvertisement::new("Echo", publisher.peer()).with_pipe("in");
    publisher.enqueue_at(&mut net, Time::ZERO, PeerCommand::Publish(advert));

    // 80% availability: mean 24s up / 6s down.
    ChurnModel::new(Dur::secs(24), Dur::secs(6)).apply(
        &mut net,
        &rendezvous,
        Time::secs(300),
        seed ^ 0xA3,
    );

    let mut asked = Vec::new();
    for q in 0..queries {
        let slot = loop {
            let g = rng.random_range(0..groups);
            let m = rng.random_range(1..group_size);
            let slot = g * group_size + m;
            if slot != 1 {
                break slot;
            }
        };
        let at = Time::millis(rng.random_range(30_000..290_000));
        asked.push((slot, q as u64, at));
    }
    asked.sort_by_key(|(_, _, at)| *at);
    for (slot, token, at) in &asked {
        handles[*slot].enqueue_at(
            &mut net,
            *at,
            PeerCommand::Query {
                token: *token,
                query: P2psQuery::by_name("Echo"),
                ttl: None,
            },
        );
    }
    net.run_until(Time::secs(310));

    let mut ok = 0usize;
    for (slot, token, at) in &asked {
        let hit = handles[*slot].events().iter().any(|(t, e)| {
            matches!(e, PeerEvent::QueryResult { token: tk, adverts }
                if tk == token && !adverts.is_empty() && t.since(*at) <= Dur::secs(5))
        });
        if hit {
            ok += 1;
        }
    }
    A2Row {
        refresh_secs,
        success_rate: ok as f64 / queries as f64,
    }
}

/// The published sweep.
pub fn sweep(seed: u64) -> Vec<A2Row> {
    [None, Some(60), Some(30), Some(10), Some(5)]
        .into_iter()
        .map(|r| run(r, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_beats_publish_once_under_churn() {
        // Without refresh the advert ages out of every cache within its
        // 60s TTL and late queries all fail; aggressive refresh keeps
        // the mesh warm.
        let never = run(None, 5);
        let fast = run(Some(5), 5);
        assert!(
            fast.success_rate > never.success_rate + 0.3,
            "never {never:?} vs fast {fast:?}"
        );
    }
}

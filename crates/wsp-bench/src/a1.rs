//! A1 (ablation) — the discovery design knobs: rendezvous mesh degree
//! and query TTL.
//!
//! The paper's P2PS binding floods queries across rendezvous peers with
//! a hop budget. This ablation quantifies the trade-off those two knobs
//! control: fan-out buys success and latency at the price of message
//! load; an under-provisioned TTL partitions discovery.

use crate::common::mean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsp_p2ps::{build_overlay, P2psQuery, PeerCommand, PeerEvent, ServiceAdvertisement};
use wsp_simnet::{Dur, LinkSpec, SimNet, Time, Topology};

/// One ablation cell.
#[derive(Debug, Clone)]
pub struct A1Row {
    pub rv_degree: usize,
    pub query_ttl: u8,
    pub success_rate: f64,
    pub mean_latency_ms: f64,
    pub msgs_per_peer: f64,
}

/// Run one (degree, ttl) cell on a fixed 30-group overlay.
pub fn run(rv_degree: usize, query_ttl: u8, seed: u64) -> A1Row {
    let groups = 30usize;
    let group_size = 8usize;
    let queries = 20usize;

    let mut net: SimNet<String> = SimNet::new(seed);
    net.set_default_link(LinkSpec::wan());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA1);
    let (topology, rendezvous) =
        Topology::rendezvous_groups(groups, group_size, rv_degree, &mut rng);
    let peers = topology.node_count();
    let (_dir, handles) = build_overlay(&mut net, &topology, &rendezvous, None);

    let publisher = &handles[1];
    let advert = ServiceAdvertisement::new("Echo", publisher.peer()).with_pipe("in");
    publisher.enqueue_at(&mut net, Time::ZERO, PeerCommand::Publish(advert));

    let mut asked = Vec::new();
    for q in 0..queries {
        let slot = loop {
            let g = rng.random_range(0..groups);
            let m = rng.random_range(1..group_size);
            let slot = g * group_size + m;
            if slot != 1 {
                break slot;
            }
        };
        let at = Time::secs(2) + Dur::millis(200 * q as u64);
        handles[slot].enqueue_at(
            &mut net,
            at,
            PeerCommand::Query {
                token: q as u64,
                query: P2psQuery::by_name("Echo"),
                ttl: Some(query_ttl),
            },
        );
        asked.push((slot, q as u64, at));
    }
    net.run_until(Time::secs(60));

    let mut latencies = Vec::new();
    let mut ok = 0usize;
    for (slot, token, at) in &asked {
        let hit = handles[*slot].events().iter().find_map(|(t, e)| match e {
            PeerEvent::QueryResult { token: tk, adverts } if tk == token && !adverts.is_empty() => {
                Some(*t)
            }
            _ => None,
        });
        if let Some(t) = hit {
            ok += 1;
            latencies.push((t - *at).as_micros() as f64 / 1000.0);
        }
    }
    A1Row {
        rv_degree,
        query_ttl,
        success_rate: ok as f64 / queries as f64,
        mean_latency_ms: mean(&latencies),
        msgs_per_peer: net.metrics().counter("simnet.sent") as f64 / peers as f64,
    }
}

/// The published grid.
pub fn sweep(seed: u64) -> Vec<A1Row> {
    let mut rows = Vec::new();
    for rv_degree in [1usize, 2, 4, 8] {
        for ttl in [2u8, 4, 7] {
            rows.push(run(rv_degree, ttl, seed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starved_ttl_fails_where_generous_ttl_succeeds() {
        // Degree 1 = ring of 30 rendezvous: diameter 15. TTL 2 cannot
        // reach most of it; TTL 16+ would. We compare 2 vs 7.
        let starved = run(1, 2, 9);
        let generous = run(8, 7, 9);
        assert!(
            starved.success_rate < generous.success_rate,
            "starved {starved:?} vs generous {generous:?}"
        );
        assert!(generous.success_rate >= 0.9, "{generous:?}");
    }

    #[test]
    fn single_cell_produces_sane_numbers() {
        let row = run(4, 7, 9);
        assert!(row.mean_latency_ms >= 0.0);
        assert!(row.msgs_per_peer > 0.0);
    }
}

//! E5 — container-less hosting vs the traditional container (claim C3).
//!
//! Two measurements:
//!
//! * the *real* wall-clock cost of WSPeer's lightweight path — launch
//!   the HTTP host, deploy a service, get the first successful
//!   response;
//! * the modelled cost of a 2004-era container doing the same
//!   (cold start, per-module deploy, optional restart-on-deploy),
//!   from [`wsp_http::ContainerModel`].
//!
//! The paper's claim is qualitative ("cumbersome"); the reproduction
//! quantifies the orders-of-magnitude gap and the redeploy behaviour.

use std::sync::Arc;
use std::time::Instant;
use wsp_core::bindings::HttpUddiBinding;
use wsp_core::{EventBus, Peer};
use wsp_http::ContainerModel;
use wsp_uddi::Registry;
use wsp_wsdl::{ServiceDescriptor, Value};

/// One scenario's deploy-to-first-response time.
#[derive(Debug, Clone)]
pub struct E5Row {
    pub scenario: String,
    pub deploy_to_first_response_ms: f64,
    /// Whether the path supports redeploy without downtime.
    pub hot_redeploy: bool,
}

/// Measure the real lightweight path once.
pub fn lightweight_once() -> f64 {
    let registry = Registry::new();
    let started = Instant::now();
    let binding = HttpUddiBinding::with_local_registry(registry, EventBus::new());
    let peer = Peer::with_binding(&binding);
    let deployed = peer
        .server()
        .deploy(
            ServiceDescriptor::echo(),
            Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
        )
        .expect("deploy");
    // First real request over loopback TCP.
    let endpoint = deployed.primary_endpoint().unwrap().to_owned();
    let response =
        wsp_http::http_call_uri(&format!("{endpoint}?wsdl"), wsp_http::Request::get("/"))
            .expect("first request");
    assert!(response.is_success());
    started.elapsed().as_secs_f64() * 1000.0
}

/// Median of `n` lightweight measurements.
pub fn lightweight_ms(n: usize) -> f64 {
    let mut samples: Vec<f64> = (0..n).map(|_| lightweight_once()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The full comparison table.
pub fn rows() -> Vec<E5Row> {
    let lightweight = lightweight_ms(5);
    let restart = ContainerModel::default();
    let hot = ContainerModel::hot_deploy();
    vec![
        E5Row {
            scenario: "WSPeer lightweight host (measured)".into(),
            deploy_to_first_response_ms: lightweight,
            hot_redeploy: true,
        },
        E5Row {
            scenario: "container, cold start (modelled)".into(),
            deploy_to_first_response_ms: restart.time_to_available(0, false).as_millis_f64(),
            hot_redeploy: false,
        },
        E5Row {
            scenario: "container, restart-on-deploy, 5 modules (modelled)".into(),
            deploy_to_first_response_ms: restart.time_to_available(5, true).as_millis_f64(),
            hot_redeploy: false,
        },
        E5Row {
            scenario: "container, hot deploy while running (modelled)".into(),
            deploy_to_first_response_ms: hot.time_to_available(5, true).as_millis_f64(),
            hot_redeploy: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightweight_path_is_orders_of_magnitude_faster() {
        let lightweight = lightweight_ms(3);
        let container_cold = ContainerModel::default()
            .time_to_available(0, false)
            .as_millis_f64();
        assert!(
            container_cold > lightweight * 10.0,
            "lightweight {lightweight}ms vs container {container_cold}ms"
        );
        // Sanity: the real path completes in under a second on loopback.
        assert!(lightweight < 1_000.0, "{lightweight}ms");
    }

    #[test]
    fn table_has_all_scenarios() {
        let rows = rows();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].hot_redeploy);
        assert!(!rows[1].hot_redeploy);
    }
}

//! E17 — the mediation gateway vs direct invocation: cached goodput,
//! tenant isolation under flood, and cache hit ratio vs TTL.
//!
//! The paper's interface argument is that mediation should cost
//! nothing the application notices; this experiment measures where
//! mediation *pays*: a shared gateway amortises discovery and — for
//! idempotent operations — whole backend round-trips across tenants.
//! Three scenarios, all against real TCP backends registered in the
//! sharded registry:
//!
//! * **goodput** — the same cache-friendly request mix (a small hot set
//!   of idempotent request bodies) pushed by a worker pool either
//!   *direct* (every call pays the backend's service time) or through
//!   the *gateway* (hits replay from the response cache). The
//!   acceptance gate is gateway goodput ≥ 3× direct on this mix, with
//!   every cache hit byte-identical to the backend reply.
//! * **isolation** — a cold tenant's request latency is measured alone
//!   (the isolated baseline), then again while a hot tenant floods the
//!   gateway from a thread pool. Fair-share admission sheds the flood
//!   at the edge, so the gate is cold p99 (flooded) ≤ 2× cold p99
//!   (isolated).
//! * **ttl sweep** — one idempotent request replayed at a fixed
//!   inter-arrival against response TTLs from shorter-than-interval to
//!   much longer; the observed hit ratio must grow monotonically (with
//!   slack for scheduler jitter) toward ~1.
//!
//! Wall-clock timing is inherent here (real sockets, real threads), so
//! the gates carry margins; the request *schedule* is seeded and the
//! byte-identity checks are exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_gateway::{Gateway, GatewayCacheConfig, GatewayConfig};
use wsp_http::{http_call_uri, Request, Response, Router, TcpServer};
use wsp_registry::{ClusterConfig, RegistryCluster, ShardedUddiClient};
use wsp_soap::{constants::CONTENT_TYPE, Envelope};
use wsp_uddi::{BindingTemplate, BusinessService};
use wsp_xml::Element;

/// One measured goodput cell.
#[derive(Debug, Clone)]
pub struct GoodputRow {
    pub mode: String,
    pub requests: usize,
    pub ok: usize,
    pub cache_hits: usize,
    pub wall_ms: u64,
    pub goodput_rps: f64,
    /// Every cache hit compared byte-for-byte against the backend's
    /// reply for the same request body. Must equal `cache_hits`.
    pub identical_hits: usize,
}

/// One measured TTL-sweep cell.
#[derive(Debug, Clone)]
pub struct SweepRow {
    pub ttl_ms: u64,
    pub requests: usize,
    pub hits: usize,
    pub hit_ratio: f64,
}

/// The isolation measurement: cold-tenant latency with and without the
/// hot flood.
#[derive(Debug, Clone)]
pub struct IsolationRow {
    pub samples: usize,
    pub isolated_p50_us: u64,
    pub isolated_p99_us: u64,
    pub flooded_p50_us: u64,
    pub flooded_p99_us: u64,
    /// Hot-tenant requests shed at the edge during the flood phase.
    pub hot_shed: u64,
    /// `flooded_p99 / isolated_p99`.
    pub p99_ratio: f64,
}

struct Fixture {
    cluster: RegistryCluster,
    server: TcpServer,
    backend_uri: String,
    service: String,
}

/// A backend whose handler costs `work` of service time per call and
/// echoes a reply derived from the request bytes (so cache hits can be
/// checked byte-for-byte against what the backend would say).
fn fixture(service: &str, work: Duration) -> Fixture {
    let cluster = RegistryCluster::new(ClusterConfig {
        nodes: 6,
        shard_count: 4,
        replication: 3,
        default_ttl: None,
    });
    let router = Router::new();
    router.deploy(
        service,
        Arc::new(move |req: &Request| {
            if !work.is_zero() {
                std::thread::sleep(work);
            }
            Response::ok(CONTENT_TYPE, backend_reply(&req.body))
        }),
    );
    let server = TcpServer::launch(0, router).expect("launch backend");
    let backend_uri = server.service_uri(service);
    let client = ShardedUddiClient::for_cluster(&cluster).expect("bootstrap");
    client
        .publish(
            &BusinessService::new("", "uddi:wspeer:e17", service)
                .with_binding(BindingTemplate::new("binding-0", backend_uri.clone())),
        )
        .expect("publish backend binding");
    Fixture {
        cluster,
        server,
        backend_uri,
        service: service.to_owned(),
    }
}

/// The reply the backend deterministically produces for a request —
/// the reference for byte-identity checks on cache hits.
fn backend_reply(request: &[u8]) -> String {
    Envelope::request(
        Element::build("urn:e17", "reply")
            .text(format!("ack-{:016x}", wsp_gateway::fnv1a(request)))
            .finish(),
    )
    .to_xml()
}

fn question(i: usize) -> Vec<u8> {
    Envelope::request(
        Element::build("urn:e17", "ask")
            .text(format!("q-{i}"))
            .finish(),
    )
    .to_xml()
    .into_bytes()
}

fn gateway_for(fx: &Fixture, cfg: GatewayConfig) -> Gateway {
    let client = ShardedUddiClient::for_cluster(&fx.cluster).expect("bootstrap");
    Gateway::new(client, cfg)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

// ---------------------------------------------------------------------------
// Goodput: gateway vs direct on a cache-friendly mix
// ---------------------------------------------------------------------------

/// Run the cache-friendly mix: `workers` threads, `per_worker` requests
/// each, bodies drawn seeded from a hot set of `distinct` questions.
pub fn goodput(
    seed: u64,
    workers: usize,
    per_worker: usize,
    distinct: usize,
    work: Duration,
) -> Vec<GoodputRow> {
    let fx = fixture("Bulk", work);
    let mut rows = Vec::new();

    // Direct: every call is a full backend round-trip.
    {
        let started = Instant::now();
        let ok = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let uri = fx.backend_uri.clone();
                let ok = Arc::clone(&ok);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xE17 ^ w as u64);
                    for _ in 0..per_worker {
                        let body = question(rng.random_range(0..distinct));
                        if let Ok(resp) =
                            http_call_uri(&uri, Request::post("/", CONTENT_TYPE, body))
                        {
                            ok.fetch_add(u64::from(resp.status == 200), Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("direct worker");
        }
        let wall = started.elapsed();
        let requests = workers * per_worker;
        let ok = ok.load(Ordering::Relaxed) as usize;
        rows.push(GoodputRow {
            mode: "direct".into(),
            requests,
            ok,
            cache_hits: 0,
            wall_ms: wall.as_millis() as u64,
            goodput_rps: ok as f64 / wall.as_secs_f64().max(1e-9),
            identical_hits: 0,
        });
    }

    // Gateway: the same seeded mix through the mediation pipeline.
    {
        let gw = gateway_for(&fx, GatewayConfig::default().idempotent(&fx.service, "*"));
        let started = Instant::now();
        let ok = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let identical = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let gw = gw.clone();
                let service = fx.service.clone();
                let (ok, hits, identical) =
                    (Arc::clone(&ok), Arc::clone(&hits), Arc::clone(&identical));
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xE17 ^ w as u64);
                    for _ in 0..per_worker {
                        let body = question(rng.random_range(0..distinct));
                        if let Ok(reply) = gw.invoke("bench", &service, &body, None) {
                            ok.fetch_add(u64::from(reply.status == 200), Ordering::Relaxed);
                            if reply.cached {
                                hits.fetch_add(1, Ordering::Relaxed);
                                // The acceptance bar: a hit is the exact
                                // bytes the backend would have sent.
                                if reply.body == backend_reply(&body).as_bytes() {
                                    identical.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("gateway worker");
        }
        let wall = started.elapsed();
        let requests = workers * per_worker;
        let ok = ok.load(Ordering::Relaxed) as usize;
        rows.push(GoodputRow {
            mode: "gateway".into(),
            requests,
            ok,
            cache_hits: hits.load(Ordering::Relaxed) as usize,
            wall_ms: wall.as_millis() as u64,
            goodput_rps: ok as f64 / wall.as_secs_f64().max(1e-9),
            identical_hits: identical.load(Ordering::Relaxed) as usize,
        });
    }

    fx.server.shutdown();
    rows
}

// ---------------------------------------------------------------------------
// Isolation: hot-tenant flood vs cold-tenant p99
// ---------------------------------------------------------------------------

/// Cold-tenant latency with and without a hot flood. Cold requests are
/// deliberately *not* idempotent, so every sample pays the full
/// mediation path; hot requests hammer from `flood_threads` threads and
/// are mostly shed at the admission edge.
pub fn isolation(seed: u64, samples: usize, flood_threads: usize, work: Duration) -> IsolationRow {
    use wsp_core::KeyedLoadShedPolicy;
    let fx = fixture("Tenants", work);
    let gw = gateway_for(
        &fx,
        // A global cap of 2 with equal weights guarantees each tenant
        // exactly one concurrent permit: the flood's second in-flight
        // request sheds while the cold tenant's share stays reserved.
        GatewayConfig::default().with_admission(
            KeyedLoadShedPolicy::fair(2)
                .with_weight("hot", 1)
                .with_weight("cold", 1)
                .with_counter_prefix("gateway.tenant"),
        ),
    );

    let cold_pass = |n: usize, salt: u64| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ salt);
        let mut lat = Vec::with_capacity(n);
        for _ in 0..n {
            let body = question(rng.random_range(0..1_000_000));
            let t0 = Instant::now();
            let reply = gw.invoke("cold", &fx.service, &body, None);
            if reply.is_ok() {
                lat.push(t0.elapsed().as_micros() as u64);
            }
        }
        lat.sort_unstable();
        lat
    };

    // Phase 1: the isolated baseline.
    let isolated = cold_pass(samples, 0xC01D);

    // Phase 2: the flood. Hot threads hammer until told to stop; a shed
    // costs them nothing but a yield, which is exactly the attack.
    let stop = Arc::new(AtomicBool::new(false));
    let hot_shed = Arc::new(AtomicU64::new(0));
    let flood: Vec<_> = (0..flood_threads)
        .map(|w| {
            let gw = gw.clone();
            let service = fx.service.clone();
            let stop = Arc::clone(&stop);
            let shed = Arc::clone(&hot_shed);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x407 ^ w as u64);
                while !stop.load(Ordering::Relaxed) {
                    let body = question(rng.random_range(0..1_000_000));
                    match gw.invoke("hot", &service, &body, None) {
                        Ok(_) => {}
                        Err(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();
    let flooded = cold_pass(samples, 0xF100D);
    stop.store(true, Ordering::Relaxed);
    for h in flood {
        h.join().expect("flood thread");
    }
    fx.server.shutdown();

    let isolated_p99 = percentile(&isolated, 0.99).max(1);
    let flooded_p99 = percentile(&flooded, 0.99).max(1);
    IsolationRow {
        samples,
        isolated_p50_us: percentile(&isolated, 0.50),
        isolated_p99_us: isolated_p99,
        flooded_p50_us: percentile(&flooded, 0.50),
        flooded_p99_us: flooded_p99,
        hot_shed: hot_shed.load(Ordering::Relaxed),
        p99_ratio: flooded_p99 as f64 / isolated_p99 as f64,
    }
}

// ---------------------------------------------------------------------------
// TTL sweep: hit ratio vs response TTL
// ---------------------------------------------------------------------------

/// Replay one idempotent request every `interval` against each TTL and
/// record the observed response-cache hit ratio.
pub fn ttl_sweep(ttls_ms: &[u64], requests: usize, interval: Duration) -> Vec<SweepRow> {
    let fx = fixture("Sweep", Duration::ZERO);
    let mut rows = Vec::new();
    for &ttl_ms in ttls_ms {
        let gw = gateway_for(
            &fx,
            GatewayConfig::default()
                .idempotent(&fx.service, "*")
                .with_cache(GatewayCacheConfig {
                    response_ttl: Duration::from_millis(ttl_ms),
                    ..GatewayCacheConfig::default()
                }),
        );
        let body = question(usize::try_from(ttl_ms).unwrap_or(0));
        let mut hits = 0usize;
        for _ in 0..requests {
            if let Ok(reply) = gw.invoke("sweep", &fx.service, &body, None) {
                hits += usize::from(reply.cached);
            }
            std::thread::sleep(interval);
        }
        rows.push(SweepRow {
            ttl_ms,
            requests,
            hits,
            hit_ratio: hits as f64 / requests.max(1) as f64,
        });
    }
    fx.server.shutdown();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_goodput_beats_direct_on_a_cache_friendly_mix() {
        let rows = goodput(2005, 2, 40, 4, Duration::from_millis(2));
        let direct = rows.iter().find(|r| r.mode == "direct").unwrap();
        let gateway = rows.iter().find(|r| r.mode == "gateway").unwrap();
        assert_eq!(direct.ok, direct.requests, "direct calls all succeed");
        assert_eq!(gateway.ok, gateway.requests, "gateway calls all succeed");
        assert!(gateway.cache_hits > 0, "the mix must actually hit");
        assert_eq!(
            gateway.identical_hits, gateway.cache_hits,
            "every hit must be byte-identical to the backend reply"
        );
        assert!(
            gateway.goodput_rps >= 3.0 * direct.goodput_rps,
            "gateway {:.0} rps vs direct {:.0} rps",
            gateway.goodput_rps,
            direct.goodput_rps
        );
    }

    #[test]
    fn hot_flood_cannot_push_cold_p99_past_twice_the_baseline() {
        let row = isolation(2005, 60, 2, Duration::from_millis(1));
        assert!(row.hot_shed > 0, "the flood must actually be shed");
        assert!(
            row.p99_ratio <= 2.0,
            "cold p99 {}us flooded vs {}us isolated (ratio {:.2})",
            row.flooded_p99_us,
            row.isolated_p99_us,
            row.p99_ratio
        );
    }

    #[test]
    fn hit_ratio_grows_with_the_ttl() {
        let rows = ttl_sweep(&[1, 50, 400], 40, Duration::from_millis(2));
        assert!(
            rows.last().unwrap().hit_ratio >= 0.8,
            "a TTL far above the inter-arrival should mostly hit: {:?}",
            rows
        );
        assert!(
            rows[0].hit_ratio <= rows.last().unwrap().hit_ratio,
            "hit ratio must not shrink as the TTL grows: {:?}",
            rows
        );
    }
}

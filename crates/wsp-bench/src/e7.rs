//! E7 — end-to-end invocation round trips: HTTP vs P2PS pipes
//! (Figures 3 vs 5/6), real threads and real sockets/channels.
//!
//! Same contract, same handler, same payloads; the only variable is the
//! transport stack underneath the WSPeer API. HTTP pays TCP connection
//! setup per call (`Connection: close` semantics); P2PS pays return-pipe
//! creation and the extra WS-Addressing machinery.

use crate::common::{mean, percentile_f64};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_core::bindings::{HttpUddiBinding, HttpUddiConfig, P2psBinding, P2psConfig};
use wsp_core::{EventBus, LocatedService, Peer, ServiceQuery};
use wsp_p2ps::{PeerConfig, PeerId, ThreadNetwork};
use wsp_uddi::Registry;
use wsp_uddi::UddiClient;
use wsp_wsdl::{OperationDef, ServiceDescriptor, Value, XsdType};

/// One transport's latency profile.
#[derive(Debug, Clone)]
pub struct E7Row {
    pub transport: &'static str,
    pub payload_bytes: usize,
    pub calls: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

fn echo_descriptor() -> ServiceDescriptor {
    ServiceDescriptor::new("EchoBench", "urn:bench:echo").operation(
        OperationDef::new("echo")
            .input("data", XsdType::String)
            .returns(XsdType::String),
    )
}

fn echo_handler() -> Arc<dyn wsp_wsdl::ServiceHandler> {
    Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone()))
}

fn measure(
    consumer: &Peer,
    service: &LocatedService,
    payload_bytes: usize,
    calls: usize,
    transport: &'static str,
) -> E7Row {
    let payload = Value::string("x".repeat(payload_bytes));
    // Warm-up.
    for _ in 0..3 {
        consumer
            .client()
            .invoke(service, "echo", std::slice::from_ref(&payload))
            .expect("warmup");
    }
    let mut samples = Vec::with_capacity(calls);
    for _ in 0..calls {
        let start = Instant::now();
        let out = consumer
            .client()
            .invoke(service, "echo", std::slice::from_ref(&payload))
            .expect("invoke");
        samples.push(start.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(out.as_str().map(str::len), Some(payload_bytes));
    }
    E7Row {
        transport,
        payload_bytes,
        calls,
        mean_ms: mean(&samples),
        p50_ms: percentile_f64(&samples, 50.0),
        p99_ms: percentile_f64(&samples, 99.0),
    }
}

/// HTTP transport round trips.
pub fn http_rtt(payload_bytes: usize, calls: usize) -> E7Row {
    let registry = Registry::new();
    let provider = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry.clone(),
        EventBus::new(),
    ));
    provider
        .server()
        .deploy_and_publish(echo_descriptor(), echo_handler())
        .expect("deploy");
    let consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry,
        EventBus::new(),
    ));
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("EchoBench"))
        .expect("locate");
    measure(&consumer, &service, payload_bytes, calls, "http")
}

/// HTTP with the keep-alive connection pool (transport ablation).
pub fn http_pooled_rtt(payload_bytes: usize, calls: usize) -> E7Row {
    let registry = Registry::new();
    let provider = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry.clone(),
        EventBus::new(),
    ));
    provider
        .server()
        .deploy_and_publish(echo_descriptor(), echo_handler())
        .expect("deploy");
    let consumer = Peer::with_binding(&HttpUddiBinding::new(
        UddiClient::direct(registry),
        EventBus::new(),
        HttpUddiConfig {
            keep_alive: true,
            ..HttpUddiConfig::default()
        },
    ));
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("EchoBench"))
        .expect("locate");
    measure(&consumer, &service, payload_bytes, calls, "http+keepalive")
}

/// P2PS pipe transport round trips.
pub fn p2ps_rtt(payload_bytes: usize, calls: usize) -> E7Row {
    let network = ThreadNetwork::new();
    let rv = network.spawn(PeerConfig::rendezvous(PeerId(0xE700)));
    let provider_peer = network.spawn(PeerConfig::ordinary(PeerId(0xE701)));
    let consumer_peer = network.spawn(PeerConfig::ordinary(PeerId(0xE702)));
    for p in [&provider_peer, &consumer_peer] {
        p.add_neighbour(rv.id(), true);
        rv.add_neighbour(p.id(), false);
    }
    let provider = Peer::with_binding(&P2psBinding::new(
        provider_peer,
        EventBus::new(),
        P2psConfig::default(),
    ));
    provider
        .server()
        .deploy_and_publish(echo_descriptor(), echo_handler())
        .expect("deploy");
    std::thread::sleep(Duration::from_millis(150));
    let consumer = Peer::with_binding(&P2psBinding::new(
        consumer_peer,
        EventBus::new(),
        P2psConfig {
            discovery_window: Duration::from_millis(400),
            ..P2psConfig::default()
        },
    ));
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("EchoBench"))
        .expect("locate");
    let row = measure(&consumer, &service, payload_bytes, calls, "p2ps");
    drop(rv);
    row
}

/// The published sweep: both transports across payload sizes.
pub fn sweep(calls: usize) -> Vec<E7Row> {
    let mut rows = Vec::new();
    for payload in [32usize, 1024, 16 * 1024] {
        rows.push(http_rtt(payload, calls));
        rows.push(http_pooled_rtt(payload, calls));
        rows.push(p2ps_rtt(payload, calls));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_transports_complete_small_payload_quickly() {
        let http = http_rtt(64, 10);
        let p2ps = p2ps_rtt(64, 10);
        // Loopback round trips: single-digit-to-low-tens of ms.
        assert!(http.mean_ms < 250.0, "{http:?}");
        assert!(p2ps.mean_ms < 250.0, "{p2ps:?}");
    }

    #[test]
    fn keep_alive_beats_connection_per_call() {
        let plain = http_rtt(64, 20);
        let pooled = http_pooled_rtt(64, 20);
        assert!(
            pooled.mean_ms < plain.mean_ms,
            "pooled {pooled:?} should beat per-call {plain:?}"
        );
    }

    #[test]
    fn large_payloads_cost_more_than_small() {
        let small = http_rtt(32, 8);
        let large = http_rtt(256 * 1024, 8);
        assert!(large.mean_ms > small.mean_ms, "{small:?} vs {large:?}");
    }
}

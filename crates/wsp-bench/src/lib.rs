//! # wsp-bench
//!
//! The experiment harness for the WSPeer reproduction. Each module
//! implements one experiment from the index in `DESIGN.md` (E1–E12);
//! the `harness` binary prints every table, and one Criterion bench per
//! experiment measures its core operation. `EXPERIMENTS.md` records the
//! observed numbers against the paper's qualitative predictions.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p wsp-bench --bin harness
//! cargo bench -p wsp-bench
//! ```

pub mod a1;
pub mod a2;
pub mod alloc_count;
pub mod common;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e12_legacy;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

//! Property tests: every well-typed `Value` survives encode → wire →
//! decode against its schema type, and contracts round-trip through
//! WSDL text.

use proptest::prelude::*;
use wsp_wsdl::value::value_element;
use wsp_wsdl::{
    ComplexType, FieldDef, OperationDef, Param, Port, Schema, ServiceDescriptor, TransportKind,
    Value, WsdlDocument, XsdType,
};

/// (type, conforming value) pairs for simple types.
fn simple_typed() -> impl Strategy<Value = (XsdType, Value)> {
    prop_oneof![
        any::<bool>().prop_map(|b| (XsdType::Boolean, Value::Bool(b))),
        any::<i64>().prop_map(|i| (XsdType::Int, Value::Int(i))),
        // Finite doubles only: NaN breaks equality, covered by a unit test.
        any::<f64>()
            .prop_filter("finite", |d| d.is_finite())
            .prop_map(|d| (XsdType::Double, Value::Double(d))),
        proptest::string::string_regex("[ -~]{0,24}")
            .unwrap()
            .prop_map(|s| (XsdType::String, Value::String(s.replace('\r', " ")))),
        proptest::collection::vec(any::<u8>(), 0..32)
            .prop_map(|b| (XsdType::Base64Binary, Value::Bytes(b))),
    ]
}

/// Arrays of one simple type.
fn typed_value() -> impl Strategy<Value = (XsdType, Value)> {
    prop_oneof![
        simple_typed(),
        (simple_typed(), 0usize..5)
            .prop_map(|((ty, v), n)| { (XsdType::Array(Box::new(ty)), Value::Array(vec![v; n])) }),
    ]
}

fn ncname() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}"
}

fn operation() -> impl Strategy<Value = OperationDef> {
    (
        ncname(),
        proptest::collection::vec((ncname(), typed_value().prop_map(|(t, _)| t)), 0..4),
        proptest::option::of(typed_value().prop_map(|(t, _)| t)),
    )
        .prop_map(|(name, inputs, output)| OperationDef {
            name,
            inputs: inputs
                .into_iter()
                .enumerate()
                .map(|(i, (n, ty))| Param::new(format!("{n}{i}"), ty))
                .collect(),
            output: output.map(|ty| Param::new("return", ty)),
            documentation: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn typed_values_round_trip((ty, value) in typed_value()) {
        let element = value_element("urn:prop", "v", &value);
        let xml = element.to_xml();
        let parsed = wsp_xml::parse(&xml).unwrap();
        let decoded = Value::decode(&parsed, &ty).expect("well-typed value decodes");
        prop_assert_eq!(decoded, value, "wire: {}", xml);
    }

    #[test]
    fn struct_values_round_trip_via_schema(
        fields in proptest::collection::vec((ncname(), simple_typed()), 1..5)
    ) {
        // Unique field names.
        let fields: Vec<(String, (XsdType, Value))> = fields
            .into_iter()
            .enumerate()
            .map(|(i, (n, tv))| (format!("{n}{i}"), tv))
            .collect();
        let mut schema = Schema::new();
        schema.define(
            "T",
            ComplexType::new(
                fields.iter().map(|(n, (ty, _))| FieldDef::new(n.clone(), ty.clone())).collect(),
            ),
        );
        let value = Value::Struct(fields.iter().map(|(n, (_, v))| (n.clone(), v.clone())).collect());
        let element = value_element("urn:prop", "t", &value);
        let parsed = wsp_xml::parse(&element.to_xml()).unwrap();
        let decoded = wsp_wsdl::decode_typed(&parsed, &XsdType::Complex("T".into()), &schema)
            .expect("struct decodes");
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn contracts_round_trip_through_wsdl_text(
        name in ncname(),
        ops in proptest::collection::vec(operation(), 1..5),
    ) {
        // Unique operation names.
        let ops: Vec<OperationDef> = ops
            .into_iter()
            .enumerate()
            .map(|(i, mut op)| { op.name = format!("{}{i}", op.name); op })
            .collect();
        let mut descriptor = ServiceDescriptor::new(name.clone(), format!("urn:prop:{name}"));
        for op in ops {
            descriptor = descriptor.operation(op);
        }
        let doc = WsdlDocument::new(
            descriptor,
            vec![Port {
                name: format!("{name}Port"),
                transport: TransportKind::Http,
                location: format!("http://host/{name}"),
            }],
        );
        let xml = doc.to_xml();
        let parsed = WsdlDocument::from_xml(&xml).expect("generated WSDL parses");
        prop_assert_eq!(parsed, doc, "wsdl:\n{}", xml);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_xml(body in "[ -~]{0,64}") {
        if let Ok(e) = wsp_xml::parse(&format!("<v>{body}</v>")) {
            for ty in [XsdType::Boolean, XsdType::Int, XsdType::Double, XsdType::Base64Binary] {
                let _ = Value::decode(&e, &ty);
            }
        }
    }
}

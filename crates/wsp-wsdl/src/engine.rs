//! The server-side message engine — the Axis substitute.
//!
//! Given a service contract and a handler, [`MessageEngine::process`]
//! turns a request envelope into a response envelope: mustUnderstand
//! checking, operation dispatch, argument decoding, handler invocation
//! and result/fault encoding. WSPeer's lightweight host calls this after
//! giving the application a chance to intercept the raw message
//! (Section III, point 2).

use crate::service::{ServiceDescriptor, ServiceHandler};
use crate::value::{value_element, Value};
use std::sync::Arc;
use wsp_soap::{constants, Envelope, Fault, FaultCode, MessageHeaders};
use wsp_xml::QName;

/// Server-side engine binding a contract to a handler.
pub struct MessageEngine {
    descriptor: ServiceDescriptor,
    handler: Arc<dyn ServiceHandler>,
}

impl MessageEngine {
    pub fn new(descriptor: ServiceDescriptor, handler: Arc<dyn ServiceHandler>) -> Self {
        MessageEngine {
            descriptor,
            handler,
        }
    }

    pub fn descriptor(&self) -> &ServiceDescriptor {
        &self.descriptor
    }

    /// Process one request envelope into a response envelope.
    ///
    /// One-way operations return `None` (nothing goes back); everything
    /// else — results and faults alike — returns `Some`.
    pub fn process(&self, request: &Envelope) -> Option<Envelope> {
        let request_headers = request.addressing().unwrap_or_default();
        let respond = |body: Result<Envelope, Fault>, action: String| -> Envelope {
            let mut env = match body {
                Ok(env) => env,
                Err(fault) => Envelope::fault(fault),
            };
            env.set_addressing(MessageHeaders::response_to(&request_headers, action));
            env
        };

        // mustUnderstand: we understand WS-Addressing and our own
        // namespace; any other mandatory header is a fault.
        let understood = self.understood_headers();
        if let Some(block) = request.not_understood(&understood).first() {
            let fault = Fault::new(
                FaultCode::MustUnderstand,
                format!("mandatory header {:?} not understood", block.element.name()),
            );
            return Some(respond(Err(fault), self.fault_action()));
        }

        let Some(payload) = request.payload() else {
            let fault = Fault::sender("request body carries no operation element");
            return Some(respond(Err(fault), self.fault_action()));
        };
        let op_name = payload.name().local_name().to_owned();
        let Some(op) = self.descriptor.find_operation(&op_name) else {
            let fault = Fault::sender(format!(
                "service {} has no operation {op_name:?}",
                self.descriptor.name
            ))
            .with_subcode(QName::new("urn:wspeer:faults", "NoSuchOperation"));
            return Some(respond(Err(fault), self.fault_action()));
        };

        // Decode arguments in declaration order.
        let mut args = Vec::with_capacity(op.inputs.len());
        for param in &op.inputs {
            match payload
                .find(self.descriptor.namespace.as_str(), &param.name)
                .or_else(|| payload.find_local(&param.name))
            {
                Some(el) => match Value::decode(el, &param.ty) {
                    Ok(v) => args.push(v),
                    Err(e) => {
                        let fault = Fault::sender(format!("argument {:?}: {e}", param.name));
                        return Some(respond(Err(fault), self.fault_action()));
                    }
                },
                None if param.optional => args.push(Value::Null),
                None => {
                    let fault =
                        Fault::sender(format!("missing required argument {:?}", param.name));
                    return Some(respond(Err(fault), self.fault_action()));
                }
            }
        }

        let result = self.handler.invoke(&op_name, &args);
        if !op.expects_response() {
            // One-way: nothing to send, even on handler error (the error
            // is the host's to log).
            return None;
        }

        let action = self
            .descriptor
            .action_uri(&self.descriptor.namespace, &format!("{op_name}Response"));
        let body = result.map(|value| {
            let ns = self.descriptor.namespace.as_str();
            let mut wrapper = wsp_xml::Element::new(ns.to_owned(), format!("{op_name}Response"));
            wrapper.push_element(value_element(ns, "return", &value));
            Envelope::request(wrapper)
        });
        Some(respond(body, action))
    }

    fn understood_headers(&self) -> Vec<QName> {
        [
            "To",
            "Action",
            "MessageID",
            "RelatesTo",
            "ReplyTo",
            "FaultTo",
            "From",
        ]
        .iter()
        .map(|l| QName::new(constants::WSA_NS, l.to_string()))
        .collect()
    }

    fn fault_action(&self) -> String {
        format!("{}#fault", self.descriptor.namespace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::ServiceProxy;
    use crate::service::OperationDef;
    use crate::xsd::XsdType;
    use wsp_soap::HeaderBlock;
    use wsp_xml::Element;

    fn echo_engine() -> MessageEngine {
        MessageEngine::new(
            ServiceDescriptor::echo(),
            Arc::new(|_op: &str, args: &[Value]| -> Result<Value, Fault> { Ok(args[0].clone()) }),
        )
    }

    fn proxy() -> ServiceProxy {
        ServiceProxy::new(ServiceDescriptor::echo(), "urn:endpoint")
    }

    #[test]
    fn full_request_response_cycle() {
        let engine = echo_engine();
        let request = proxy()
            .encode_request("echoString", &[Value::string("ping")])
            .unwrap();
        let response = engine.process(&request).unwrap();
        let value = proxy().decode_response("echoString", &response).unwrap();
        assert_eq!(value, Value::string("ping"));
    }

    #[test]
    fn response_correlates_to_request_id() {
        let engine = echo_engine();
        let request = proxy()
            .encode_request("echoString", &[Value::string("x")])
            .unwrap();
        let req_id = request.addressing().unwrap().message_id;
        let response = engine.process(&request).unwrap();
        assert_eq!(response.addressing().unwrap().relates_to, req_id);
    }

    #[test]
    fn unknown_operation_faults_with_subcode() {
        let engine = echo_engine();
        let payload = Element::new("urn:wspeer:echo", "noSuchOp");
        let response = engine.process(&Envelope::request(payload)).unwrap();
        let fault = response.fault_body().unwrap();
        assert_eq!(fault.code, FaultCode::Sender);
        assert_eq!(
            fault.subcode.as_ref().unwrap().local_name(),
            "NoSuchOperation"
        );
    }

    #[test]
    fn missing_argument_faults() {
        let engine = echo_engine();
        let payload = Element::new("urn:wspeer:echo", "echoString"); // no text arg
        let response = engine.process(&Envelope::request(payload)).unwrap();
        let fault = response.fault_body().unwrap();
        assert!(fault.reason.contains("text"));
    }

    #[test]
    fn badly_typed_argument_faults() {
        let descriptor = ServiceDescriptor::new("Math", "urn:math").operation(
            OperationDef::new("square")
                .input("n", XsdType::Int)
                .returns(XsdType::Int),
        );
        let engine = MessageEngine::new(
            descriptor.clone(),
            Arc::new(|_: &str, args: &[Value]| -> Result<Value, Fault> {
                let n = args[0].as_int().unwrap();
                Ok(Value::Int(n * n))
            }),
        );
        let mut payload = Element::new("urn:math", "square");
        payload.push_element(
            Element::build("urn:math", "n")
                .text("not-a-number")
                .finish(),
        );
        let response = engine.process(&Envelope::request(payload)).unwrap();
        assert!(response.fault_body().unwrap().reason.contains("n"));
    }

    #[test]
    fn empty_body_faults() {
        let engine = echo_engine();
        let response = engine.process(&Envelope::empty()).unwrap();
        assert!(response.fault_body().is_some());
    }

    #[test]
    fn handler_fault_propagates() {
        let engine = MessageEngine::new(
            ServiceDescriptor::echo(),
            Arc::new(|_: &str, _: &[Value]| -> Result<Value, Fault> {
                Err(Fault::receiver("backend down"))
            }),
        );
        let request = proxy()
            .encode_request("echoString", &[Value::string("x")])
            .unwrap();
        let response = engine.process(&request).unwrap();
        assert_eq!(response.fault_body().unwrap().reason, "backend down");
    }

    #[test]
    fn unknown_mandatory_header_faults() {
        let engine = echo_engine();
        let mut request = proxy()
            .encode_request("echoString", &[Value::string("x")])
            .unwrap();
        request.add_header(HeaderBlock::mandatory(Element::new(
            "urn:strange",
            "Security",
        )));
        let response = engine.process(&request).unwrap();
        assert_eq!(
            response.fault_body().unwrap().code,
            FaultCode::MustUnderstand
        );
    }

    #[test]
    fn optional_mystery_header_ignored() {
        let engine = echo_engine();
        let mut request = proxy()
            .encode_request("echoString", &[Value::string("x")])
            .unwrap();
        request.add_header(HeaderBlock::new(Element::new("urn:strange", "Trace")));
        let response = engine.process(&request).unwrap();
        assert!(response.fault_body().is_none());
    }

    #[test]
    fn one_way_operation_returns_none() {
        let descriptor = ServiceDescriptor::new("Log", "urn:log").operation(
            OperationDef::new("record")
                .input("line", XsdType::String)
                .one_way(),
        );
        let engine = MessageEngine::new(
            descriptor.clone(),
            Arc::new(|_: &str, _: &[Value]| -> Result<Value, Fault> { Ok(Value::Null) }),
        );
        let proxy = ServiceProxy::new(descriptor, "urn:log-endpoint");
        let request = proxy
            .encode_request("record", &[Value::string("hello")])
            .unwrap();
        assert!(engine.process(&request).is_none());
    }

    #[test]
    fn optional_argument_defaults_to_null() {
        let descriptor = ServiceDescriptor::new("Opt", "urn:opt").operation(
            OperationDef::new("greet")
                .input("name", XsdType::String)
                .optional_input("greeting", XsdType::String)
                .returns(XsdType::String),
        );
        let engine = MessageEngine::new(
            descriptor.clone(),
            Arc::new(|_: &str, args: &[Value]| -> Result<Value, Fault> {
                let name = args[0].as_str().unwrap();
                let greeting = args[1].as_str().unwrap_or("hello");
                Ok(Value::string(format!("{greeting} {name}")))
            }),
        );
        let proxy = ServiceProxy::new(descriptor, "urn:e");
        let request = proxy
            .encode_request("greet", &[Value::string("ian")])
            .unwrap();
        let response = engine.process(&request).unwrap();
        assert_eq!(
            proxy.decode_response("greet", &response).unwrap(),
            Value::string("hello ian")
        );
    }
}

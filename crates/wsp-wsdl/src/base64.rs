//! Minimal RFC 4648 base64 (standard alphabet, with padding) for
//! `xsd:base64Binary` values. Implemented locally to stay inside the
//! allowed dependency set.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes to base64 text.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode base64 text (whitespace tolerated, padding required for the
/// final quantum as produced by [`encode`]).
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(text.len() / 4 * 3);
    let mut quad = [0u8; 4];
    let mut len = 0usize;
    let mut pad = 0usize;
    for c in text.bytes() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            pad += 1;
            quad[len] = 0;
            len += 1;
        } else {
            if pad > 0 {
                return None; // data after padding
            }
            quad[len] = value_of(c)?;
            len += 1;
        }
        if len == 4 {
            let n = (u32::from(quad[0]) << 18)
                | (u32::from(quad[1]) << 12)
                | (u32::from(quad[2]) << 6)
                | u32::from(quad[3]);
            out.push((n >> 16) as u8);
            if pad < 2 {
                out.push((n >> 8) as u8);
            }
            if pad < 1 {
                out.push(n as u8);
            }
            len = 0;
        }
    }
    if len != 0 || pad > 2 {
        return None;
    }
    Some(out)
}

fn value_of(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_tolerates_whitespace() {
        assert_eq!(decode("Zm9v\nYmFy ").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("Z*==").is_none());
        assert!(decode("Zg=").is_none()); // truncated quantum
        assert!(decode("Zg==Zg==x").is_none());
        assert!(decode("Z=g=").is_none()); // data after padding
    }

    #[test]
    fn round_trip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn round_trip_various_lengths() {
        for len in 0..32 {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }
}

//! WSDL 1.1 document model: generation from a [`ServiceDescriptor`] and
//! parsing back.
//!
//! WSPeer publishes services as WSDL (over UDDI or a P2PS definition
//! pipe) and consumes WSDL when locating services, so generation and
//! parsing must round-trip faithfully.

use crate::service::{OperationDef, Param, ServiceDescriptor};
use crate::xsd::{Schema, XsdType, XSD_NS};
use std::fmt;
use wsp_xml::{Element, QName};

/// WSDL 1.1 namespace.
pub const WSDL_NS: &str = "http://schemas.xmlsoap.org/wsdl/";
/// WSDL SOAP binding namespace.
pub const WSDL_SOAP_NS: &str = "http://schemas.xmlsoap.org/wsdl/soap12/";
/// WSPeer's WSDL extension namespace (discovery properties travel in the
/// description so they survive a locate round trip on any binding).
pub const WSP_EXT_NS: &str = "urn:wspeer:wsdl-ext";

/// Transport identifiers carried in `soap:binding/@transport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Plain HTTP (the standard implementation's default).
    Http,
    /// HTTPG — the authenticated transport used by Globus.
    Httpg,
    /// SOAP over P2PS pipes.
    P2ps,
}

impl TransportKind {
    pub fn uri(self) -> &'static str {
        match self {
            TransportKind::Http => "http://schemas.xmlsoap.org/soap/http",
            TransportKind::Httpg => "urn:wspeer:transport:httpg",
            TransportKind::P2ps => "urn:wspeer:transport:p2ps",
        }
    }

    pub fn from_uri(uri: &str) -> Option<TransportKind> {
        match uri {
            "http://schemas.xmlsoap.org/soap/http" => Some(TransportKind::Http),
            "urn:wspeer:transport:httpg" => Some(TransportKind::Httpg),
            "urn:wspeer:transport:p2ps" => Some(TransportKind::P2ps),
            _ => None,
        }
    }

    /// The URI scheme of endpoint addresses on this transport.
    pub fn scheme(self) -> &'static str {
        match self {
            TransportKind::Http => "http",
            TransportKind::Httpg => "httpg",
            TransportKind::P2ps => "p2ps",
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Http => "http",
            TransportKind::Httpg => "httpg",
            TransportKind::P2ps => "p2ps",
        })
    }
}

/// A concrete endpoint in the WSDL `service` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    pub name: String,
    pub transport: TransportKind,
    /// `soap:address/@location` — the endpoint URI.
    pub location: String,
}

/// A parsed or generated WSDL document.
#[derive(Debug, Clone, PartialEq)]
pub struct WsdlDocument {
    pub descriptor: ServiceDescriptor,
    pub ports: Vec<Port>,
}

impl WsdlDocument {
    /// Describe `descriptor` with concrete endpoints.
    pub fn new(descriptor: ServiceDescriptor, ports: Vec<Port>) -> Self {
        WsdlDocument { descriptor, ports }
    }

    /// The first port on a given transport.
    pub fn port_for(&self, transport: TransportKind) -> Option<&Port> {
        self.ports.iter().find(|p| p.transport == transport)
    }

    /// Generate the `wsdl:definitions` element.
    pub fn to_element(&self) -> Element {
        let d = &self.descriptor;
        let tns = d.namespace.clone();
        let mut defs = Element::new(WSDL_NS, "definitions");
        defs.set_attribute(QName::local("name"), d.name.clone());
        defs.set_attribute(QName::local("targetNamespace"), tns.clone());

        if let Some(doc) = &d.documentation {
            defs.push_element(
                Element::build(WSDL_NS, "documentation")
                    .text(doc.clone())
                    .finish(),
            );
        }

        // WSPeer extension: discovery properties (WSDL 1.1 permits
        // extension elements in other namespaces).
        if !d.properties.is_empty() {
            let mut props = Element::new(WSP_EXT_NS, "Properties");
            for (key, value) in &d.properties {
                props.push_element(
                    Element::build(WSP_EXT_NS, "Property")
                        .attr_str("name", key.clone())
                        .text(value.clone())
                        .finish(),
                );
            }
            defs.push_element(props);
        }

        // types
        if !d.schema.types.is_empty() {
            let types = Element::build(WSDL_NS, "types")
                .child(d.schema.to_element(&tns))
                .finish();
            defs.push_element(types);
        }

        // messages
        for op in &d.operations {
            defs.push_element(message_element(&format!("{}Request", op.name), &op.inputs));
            if let Some(out) = &op.output {
                defs.push_element(message_element(
                    &format!("{}Response", op.name),
                    std::slice::from_ref(out),
                ));
            }
        }

        // portType
        let mut port_type = Element::new(WSDL_NS, "portType");
        port_type.set_attribute(QName::local("name"), format!("{}PortType", d.name));
        for op in &d.operations {
            let mut o = Element::new(WSDL_NS, "operation");
            o.set_attribute(QName::local("name"), op.name.clone());
            if let Some(doc) = &op.documentation {
                o.push_element(
                    Element::build(WSDL_NS, "documentation")
                        .text(doc.clone())
                        .finish(),
                );
            }
            let mut input = Element::new(WSDL_NS, "input");
            input.set_attribute(QName::local("message"), format!("tns:{}Request", op.name));
            o.push_element(input);
            if op.output.is_some() {
                let mut output = Element::new(WSDL_NS, "output");
                output.set_attribute(QName::local("message"), format!("tns:{}Response", op.name));
                o.push_element(output);
            }
            port_type.push_element(o);
        }
        defs.push_element(port_type);

        // one binding per distinct transport in use
        let mut seen = Vec::new();
        for port in &self.ports {
            if seen.contains(&port.transport) {
                continue;
            }
            seen.push(port.transport);
            let mut binding = Element::new(WSDL_NS, "binding");
            binding.set_attribute(QName::local("name"), binding_name(&d.name, port.transport));
            binding.set_attribute(QName::local("type"), format!("tns:{}PortType", d.name));
            let mut soap_binding = Element::new(WSDL_SOAP_NS, "binding");
            soap_binding.set_attribute(QName::local("transport"), port.transport.uri());
            soap_binding.set_attribute(QName::local("style"), "document");
            binding.push_element(soap_binding);
            defs.push_element(binding);
        }

        // service with its ports
        let mut service = Element::new(WSDL_NS, "service");
        service.set_attribute(QName::local("name"), d.name.clone());
        for port in &self.ports {
            let mut p = Element::new(WSDL_NS, "port");
            p.set_attribute(QName::local("name"), port.name.clone());
            p.set_attribute(
                QName::local("binding"),
                format!("tns:{}", binding_name(&d.name, port.transport)),
            );
            let mut addr = Element::new(WSDL_SOAP_NS, "address");
            addr.set_attribute(QName::local("location"), port.location.clone());
            p.push_element(addr);
            service.push_element(p);
        }
        defs.push_element(service);
        defs
    }

    /// Serialise to XML text.
    pub fn to_xml(&self) -> String {
        let config = wsp_xml::WriterConfig::wire()
            .prefer(WSDL_NS, "wsdl")
            .prefer(WSDL_SOAP_NS, "soap")
            .prefer(XSD_NS, "xsd");
        wsp_xml::Writer::new(config).write(&self.to_element())
    }

    /// Parse a `wsdl:definitions` element.
    pub fn from_element(root: &Element) -> Result<WsdlDocument, WsdlError> {
        if !root.name().is(WSDL_NS, "definitions") {
            return Err(WsdlError::NotWsdl {
                found: format!("{:?}", root.name()),
            });
        }
        let namespace = root
            .attribute_local("targetNamespace")
            .ok_or(WsdlError::Missing("targetNamespace"))?
            .to_owned();
        let name = root.attribute_local("name").unwrap_or("Service").to_owned();

        let documentation = root.find(WSDL_NS, "documentation").map(Element::text);

        let properties = root
            .find(WSP_EXT_NS, "Properties")
            .map(|props| {
                props
                    .find_all(WSP_EXT_NS, "Property")
                    .filter_map(|p| p.attribute_local("name").map(|n| (n.to_owned(), p.text())))
                    .collect()
            })
            .unwrap_or_default();

        let schema = root
            .find(WSDL_NS, "types")
            .and_then(|t| t.find(XSD_NS, "schema"))
            .map(Schema::from_element)
            .unwrap_or_default();

        // messages: name -> params
        let mut messages: Vec<(String, Vec<Param>)> = Vec::new();
        for m in root.find_all(WSDL_NS, "message") {
            let Some(mname) = m.attribute_local("name") else {
                continue;
            };
            let mut params = Vec::new();
            for part in m.find_all(WSDL_NS, "part") {
                let Some(pname) = part.attribute_local("name") else {
                    continue;
                };
                let ty = part
                    .attribute_local("type")
                    .map(XsdType::from_type_ref)
                    .unwrap_or(XsdType::AnyType);
                let optional = part.attribute_local("minOccurs") == Some("0");
                params.push(Param {
                    name: pname.to_owned(),
                    ty,
                    optional,
                });
            }
            messages.push((mname.to_owned(), params));
        }
        let lookup = |msg_ref: &str| -> Vec<Param> {
            let local = msg_ref.rsplit(':').next().unwrap_or(msg_ref);
            messages
                .iter()
                .find(|(n, _)| n == local)
                .map(|(_, p)| p.clone())
                .unwrap_or_default()
        };

        let port_type = root
            .find(WSDL_NS, "portType")
            .ok_or(WsdlError::Missing("portType"))?;
        let mut operations = Vec::new();
        for o in port_type.find_all(WSDL_NS, "operation") {
            let Some(oname) = o.attribute_local("name") else {
                continue;
            };
            let inputs = o
                .find(WSDL_NS, "input")
                .and_then(|i| i.attribute_local("message"))
                .map(&lookup)
                .unwrap_or_default();
            let output = o
                .find(WSDL_NS, "output")
                .and_then(|out| out.attribute_local("message"))
                .map(&lookup)
                .and_then(|params| params.into_iter().next());
            let documentation = o.find(WSDL_NS, "documentation").map(Element::text);
            operations.push(OperationDef {
                name: oname.to_owned(),
                inputs,
                output,
                documentation,
            });
        }

        // bindings: name -> transport
        let mut bindings: Vec<(String, TransportKind)> = Vec::new();
        for b in root.find_all(WSDL_NS, "binding") {
            let Some(bname) = b.attribute_local("name") else {
                continue;
            };
            let transport = b
                .find(WSDL_SOAP_NS, "binding")
                .and_then(|sb| sb.attribute_local("transport"))
                .and_then(TransportKind::from_uri)
                .unwrap_or(TransportKind::Http);
            bindings.push((bname.to_owned(), transport));
        }

        let mut ports = Vec::new();
        if let Some(service) = root.find(WSDL_NS, "service") {
            for p in service.find_all(WSDL_NS, "port") {
                let Some(pname) = p.attribute_local("name") else {
                    continue;
                };
                let Some(location) = p
                    .find(WSDL_SOAP_NS, "address")
                    .and_then(|a| a.attribute_local("location"))
                else {
                    continue;
                };
                let transport = p
                    .attribute_local("binding")
                    .map(|b| b.rsplit(':').next().unwrap_or(b).to_owned())
                    .and_then(|b| bindings.iter().find(|(n, _)| *n == b).map(|(_, t)| *t))
                    .unwrap_or(TransportKind::Http);
                ports.push(Port {
                    name: pname.to_owned(),
                    transport,
                    location: location.to_owned(),
                });
            }
        }

        let descriptor = ServiceDescriptor {
            name,
            namespace,
            operations,
            schema,
            documentation,
            properties,
        };
        Ok(WsdlDocument { descriptor, ports })
    }

    /// Parse XML text.
    pub fn from_xml(xml: &str) -> Result<WsdlDocument, WsdlError> {
        let root = wsp_xml::parse(xml).map_err(WsdlError::Xml)?;
        WsdlDocument::from_element(&root)
    }
}

fn binding_name(service: &str, transport: TransportKind) -> String {
    format!("{service}{}Binding", capitalised(transport))
}

fn capitalised(t: TransportKind) -> &'static str {
    match t {
        TransportKind::Http => "Http",
        TransportKind::Httpg => "Httpg",
        TransportKind::P2ps => "P2ps",
    }
}

fn message_element(name: &str, params: &[Param]) -> Element {
    let mut m = Element::new(WSDL_NS, "message");
    m.set_attribute(QName::local("name"), name.to_owned());
    for p in params {
        let mut part = Element::new(WSDL_NS, "part");
        part.set_attribute(QName::local("name"), p.name.clone());
        part.set_attribute(QName::local("type"), p.ty.type_ref());
        if p.optional {
            part.set_attribute(QName::local("minOccurs"), "0");
        }
        m.push_element(part);
    }
    m
}

/// Errors raised while parsing WSDL.
#[derive(Debug, Clone, PartialEq)]
pub enum WsdlError {
    Xml(wsp_xml::XmlError),
    NotWsdl { found: String },
    Missing(&'static str),
}

impl fmt::Display for WsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlError::Xml(e) => write!(f, "WSDL is not well-formed: {e}"),
            WsdlError::NotWsdl { found } => {
                write!(f, "root element {found} is not wsdl:definitions")
            }
            WsdlError::Missing(what) => write!(f, "WSDL lacks required {what}"),
        }
    }
}

impl std::error::Error for WsdlError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xsd::{ComplexType, FieldDef};

    fn sample_doc() -> WsdlDocument {
        let mut schema = Schema::new();
        schema.define(
            "Frame",
            ComplexType::new(vec![
                FieldDef::new("step", XsdType::Int),
                FieldDef::new("payload", XsdType::Base64Binary),
            ]),
        );
        let descriptor = ServiceDescriptor::new("Cactus", "urn:wspeer:cactus")
            .doc("Streams simulation frames")
            .with_schema(schema)
            .operation(
                OperationDef::new("nextFrame")
                    .input("sinceStep", XsdType::Int)
                    .returns(XsdType::Complex("Frame".into()))
                    .doc("Returns the next available frame"),
            )
            .operation(OperationDef::new("stop").one_way());
        WsdlDocument::new(
            descriptor,
            vec![
                Port {
                    name: "CactusHttp".into(),
                    transport: TransportKind::Http,
                    location: "http://10.0.0.1:8080/Cactus".into(),
                },
                Port {
                    name: "CactusP2ps".into(),
                    transport: TransportKind::P2ps,
                    location: "p2ps://feed1234/Cactus".into(),
                },
            ],
        )
    }

    #[test]
    fn wsdl_round_trips() {
        let doc = sample_doc();
        let xml = doc.to_xml();
        let parsed = WsdlDocument::from_xml(&xml).unwrap();
        assert_eq!(parsed, doc, "wire form:\n{xml}");
    }

    #[test]
    fn echo_round_trips() {
        let doc = WsdlDocument::new(
            ServiceDescriptor::echo(),
            vec![Port {
                name: "EchoPort".into(),
                transport: TransportKind::Http,
                location: "http://h:1/Echo".into(),
            }],
        );
        let parsed = WsdlDocument::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn port_for_selects_transport() {
        let doc = sample_doc();
        assert_eq!(
            doc.port_for(TransportKind::P2ps).unwrap().location,
            "p2ps://feed1234/Cactus"
        );
        assert!(doc.port_for(TransportKind::Httpg).is_none());
    }

    #[test]
    fn one_way_operation_has_no_output() {
        let doc = sample_doc();
        let parsed = WsdlDocument::from_xml(&doc.to_xml()).unwrap();
        let stop = parsed.descriptor.find_operation("stop").unwrap();
        assert!(!stop.expects_response());
    }

    #[test]
    fn transport_uris_round_trip() {
        for t in [
            TransportKind::Http,
            TransportKind::Httpg,
            TransportKind::P2ps,
        ] {
            assert_eq!(TransportKind::from_uri(t.uri()), Some(t));
        }
        assert_eq!(TransportKind::from_uri("urn:other"), None);
    }

    #[test]
    fn rejects_non_wsdl_documents() {
        assert!(matches!(
            WsdlDocument::from_xml("<a/>"),
            Err(WsdlError::NotWsdl { .. })
        ));
        assert!(matches!(
            WsdlDocument::from_xml("<<<"),
            Err(WsdlError::Xml(_))
        ));
    }

    #[test]
    fn missing_target_namespace_rejected() {
        let xml = format!(r#"<d:definitions xmlns:d="{WSDL_NS}"/>"#);
        assert!(matches!(
            WsdlDocument::from_xml(&xml),
            Err(WsdlError::Missing("targetNamespace"))
        ));
    }

    #[test]
    fn conventional_prefixes_in_output() {
        let xml = sample_doc().to_xml();
        assert!(xml.contains("<wsdl:definitions"), "{xml}");
        assert!(xml.contains("<soap:address"), "{xml}");
    }
}

//! The XML Schema subset used in WSDL `types` sections.

use std::collections::BTreeMap;
use std::fmt;
use wsp_xml::Element;

/// XML Schema namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";

/// The types a WSPeer service signature can use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsdType {
    Boolean,
    Int,
    Long,
    Double,
    String,
    Base64Binary,
    /// `xsd:anyType` — escape hatch for untyped payloads.
    AnyType,
    /// A sequence (`maxOccurs="unbounded"` element named `item`).
    Array(Box<XsdType>),
    /// Reference to a named complex type in the service schema.
    Complex(String),
}

impl XsdType {
    /// The `xsd:*` QName lexical form for simple types, or the local
    /// complex type name.
    pub fn type_ref(&self) -> String {
        match self {
            XsdType::Boolean => "xsd:boolean".to_owned(),
            XsdType::Int => "xsd:int".to_owned(),
            XsdType::Long => "xsd:long".to_owned(),
            XsdType::Double => "xsd:double".to_owned(),
            XsdType::String => "xsd:string".to_owned(),
            XsdType::Base64Binary => "xsd:base64Binary".to_owned(),
            XsdType::AnyType => "xsd:anyType".to_owned(),
            XsdType::Array(inner) => format!("tns:ArrayOf_{}", inner.simple_name()),
            XsdType::Complex(name) => format!("tns:{name}"),
        }
    }

    /// The unprefixed local name used inside array type names.
    fn simple_name(&self) -> String {
        match self {
            XsdType::Boolean => "boolean".to_owned(),
            XsdType::Int => "int".to_owned(),
            XsdType::Long => "long".to_owned(),
            XsdType::Double => "double".to_owned(),
            XsdType::String => "string".to_owned(),
            XsdType::Base64Binary => "base64Binary".to_owned(),
            XsdType::AnyType => "anyType".to_owned(),
            XsdType::Array(inner) => format!("ArrayOf_{}", inner.simple_name()),
            XsdType::Complex(name) => name.clone(),
        }
    }

    /// Parse a lexical type reference back into an [`XsdType`].
    pub fn from_type_ref(text: &str) -> XsdType {
        let local = text.rsplit(':').next().unwrap_or(text);
        if let Some(rest) = local.strip_prefix("ArrayOf_") {
            return XsdType::Array(Box::new(XsdType::from_type_ref(rest)));
        }
        match local {
            "boolean" => XsdType::Boolean,
            "int" | "integer" | "short" | "byte" => XsdType::Int,
            "long" => XsdType::Long,
            "double" | "float" | "decimal" => XsdType::Double,
            "string" => XsdType::String,
            "base64Binary" => XsdType::Base64Binary,
            "anyType" => XsdType::AnyType,
            other => XsdType::Complex(other.to_owned()),
        }
    }
}

impl fmt::Display for XsdType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.type_ref())
    }
}

/// One field of a complex type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub ty: XsdType,
    /// `minOccurs="0"` — the field may be omitted (decodes to `Null`).
    pub optional: bool,
}

impl FieldDef {
    pub fn new(name: impl Into<String>, ty: XsdType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            optional: false,
        }
    }

    pub fn optional(name: impl Into<String>, ty: XsdType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            optional: true,
        }
    }
}

/// A named complex type: an ordered sequence of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComplexType {
    pub fields: Vec<FieldDef>,
}

impl ComplexType {
    pub fn new(fields: Vec<FieldDef>) -> Self {
        ComplexType { fields }
    }
}

/// The schema section of a service description: named complex types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub types: BTreeMap<String, ComplexType>,
}

impl Schema {
    pub fn new() -> Self {
        Schema::default()
    }

    pub fn define(&mut self, name: impl Into<String>, ty: ComplexType) -> &mut Self {
        self.types.insert(name.into(), ty);
        self
    }

    pub fn get(&self, name: &str) -> Option<&ComplexType> {
        self.types.get(name)
    }

    /// Render as an `xsd:schema` element for embedding in WSDL `types`.
    pub fn to_element(&self, target_ns: &str) -> Element {
        let mut schema = Element::new(XSD_NS, "schema");
        schema.set_attribute(
            wsp_xml::QName::local("targetNamespace"),
            target_ns.to_owned(),
        );
        for (name, ty) in &self.types {
            let mut seq = Element::new(XSD_NS, "sequence");
            for field in &ty.fields {
                let mut el = Element::new(XSD_NS, "element");
                el.set_attribute(wsp_xml::QName::local("name"), field.name.clone());
                el.set_attribute(wsp_xml::QName::local("type"), field.ty.type_ref());
                if field.optional {
                    el.set_attribute(wsp_xml::QName::local("minOccurs"), "0");
                }
                if matches!(field.ty, XsdType::Array(_)) {
                    el.set_attribute(wsp_xml::QName::local("maxOccurs"), "unbounded");
                }
                seq.push_element(el);
            }
            let complex = Element::build(XSD_NS, "complexType")
                .attr_str("name", name.clone())
                .child(seq)
                .finish();
            schema.push_element(complex);
        }
        schema
    }

    /// Parse an `xsd:schema` element produced by [`Schema::to_element`].
    pub fn from_element(element: &Element) -> Schema {
        let mut schema = Schema::new();
        for complex in element.find_all(XSD_NS, "complexType") {
            let Some(name) = complex.attribute_local("name") else {
                continue;
            };
            let mut fields = Vec::new();
            if let Some(seq) = complex.find(XSD_NS, "sequence") {
                for el in seq.find_all(XSD_NS, "element") {
                    let Some(fname) = el.attribute_local("name") else {
                        continue;
                    };
                    let ty = el
                        .attribute_local("type")
                        .map(XsdType::from_type_ref)
                        .unwrap_or(XsdType::AnyType);
                    let optional = el.attribute_local("minOccurs") == Some("0");
                    fields.push(FieldDef {
                        name: fname.to_owned(),
                        ty,
                        optional,
                    });
                }
            }
            schema.define(name.to_owned(), ComplexType::new(fields));
        }
        schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_refs_round_trip() {
        for ty in [
            XsdType::Boolean,
            XsdType::Int,
            XsdType::Long,
            XsdType::Double,
            XsdType::String,
            XsdType::Base64Binary,
            XsdType::AnyType,
            XsdType::Array(Box::new(XsdType::String)),
            XsdType::Array(Box::new(XsdType::Array(Box::new(XsdType::Int)))),
            XsdType::Complex("Frame".into()),
        ] {
            assert_eq!(XsdType::from_type_ref(&ty.type_ref()), ty, "{ty}");
        }
    }

    #[test]
    fn foreign_integer_flavours_collapse() {
        assert_eq!(XsdType::from_type_ref("xsd:short"), XsdType::Int);
        assert_eq!(XsdType::from_type_ref("xsd:decimal"), XsdType::Double);
    }

    #[test]
    fn schema_round_trip() {
        let mut schema = Schema::new();
        schema.define(
            "Frame",
            ComplexType::new(vec![
                FieldDef::new("step", XsdType::Int),
                FieldDef::optional("label", XsdType::String),
                FieldDef::new("data", XsdType::Array(Box::new(XsdType::Double))),
            ]),
        );
        let element = schema.to_element("urn:svc");
        let xml = element.to_xml();
        let parsed = Schema::from_element(&wsp_xml::parse(&xml).unwrap());
        assert_eq!(parsed, schema);
    }

    #[test]
    fn empty_schema_round_trip() {
        let schema = Schema::new();
        let parsed = Schema::from_element(&schema.to_element("urn:svc"));
        assert!(parsed.types.is_empty());
    }

    #[test]
    fn get_looks_up_types() {
        let mut schema = Schema::new();
        schema.define("T", ComplexType::default());
        assert!(schema.get("T").is_some());
        assert!(schema.get("U").is_none());
    }
}

//! The client-side dynamic proxy — the stub-generation substitute.
//!
//! Axis generates Java stubs from WSDL; WSPeer even extends that to
//! generate them "directly to bytes". The Rust equivalent constructs a
//! [`ServiceProxy`] from a parsed WSDL (or a local descriptor) at
//! runtime. The proxy validates calls against the contract, encodes
//! request envelopes and decodes response envelopes; actual transport is
//! supplied by the caller, keeping the proxy binding-agnostic (the same
//! proxy drives HTTP and P2PS invocations).

use crate::model::WsdlDocument;
use crate::service::ServiceDescriptor;
use crate::value::{decode_typed, value_element, Value};
use std::fmt;
use wsp_soap::{Envelope, Fault, MessageHeaders};
use wsp_xml::Element;

/// Errors raised on the client side of an invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// The contract has no such operation.
    NoSuchOperation(String),
    /// Wrong number of arguments.
    ArityMismatch {
        operation: String,
        expected: usize,
        got: usize,
    },
    /// An argument does not conform to the declared parameter type.
    TypeMismatch {
        operation: String,
        param: String,
        expected: String,
    },
    /// The service answered with a fault (boxed: faults carry XML detail
    /// and would otherwise dominate the enum's size).
    Fault(Box<Fault>),
    /// The response envelope was not shaped as the contract promises.
    BadResponse(String),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::NoSuchOperation(op) => write!(f, "no operation {op:?} in contract"),
            ProxyError::ArityMismatch {
                operation,
                expected,
                got,
            } => {
                write!(f, "{operation}: expected {expected} argument(s), got {got}")
            }
            ProxyError::TypeMismatch {
                operation,
                param,
                expected,
            } => {
                write!(f, "{operation}: argument {param:?} must be {expected}")
            }
            ProxyError::Fault(fault) => write!(f, "{fault}"),
            ProxyError::BadResponse(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<Fault> for ProxyError {
    fn from(f: Fault) -> Self {
        ProxyError::Fault(Box::new(f))
    }
}

/// A typed, transport-agnostic view of one remote service endpoint.
#[derive(Debug, Clone)]
pub struct ServiceProxy {
    descriptor: ServiceDescriptor,
    /// The endpoint URI placed in `wsa:To`.
    endpoint: String,
}

impl ServiceProxy {
    /// Build from a local descriptor and an endpoint address.
    pub fn new(descriptor: ServiceDescriptor, endpoint: impl Into<String>) -> Self {
        ServiceProxy {
            descriptor,
            endpoint: endpoint.into(),
        }
    }

    /// Build from WSDL, using the location of the first port (or of the
    /// port matching `port_name` if given).
    pub fn from_wsdl(document: &WsdlDocument, port_name: Option<&str>) -> Result<Self, ProxyError> {
        let port = match port_name {
            Some(name) => document.ports.iter().find(|p| p.name == name),
            None => document.ports.first(),
        }
        .ok_or_else(|| ProxyError::BadResponse("WSDL defines no usable port".to_owned()))?;
        Ok(ServiceProxy::new(
            document.descriptor.clone(),
            port.location.clone(),
        ))
    }

    pub fn descriptor(&self) -> &ServiceDescriptor {
        &self.descriptor
    }

    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The `wsa:Action` for an operation at this endpoint.
    pub fn action(&self, operation: &str) -> String {
        self.descriptor.action_uri(&self.endpoint, operation)
    }

    /// Validate `args` and build the request envelope, including
    /// WS-Addressing `To`/`Action`/`MessageID` headers.
    pub fn encode_request(&self, operation: &str, args: &[Value]) -> Result<Envelope, ProxyError> {
        let op = self
            .descriptor
            .find_operation(operation)
            .ok_or_else(|| ProxyError::NoSuchOperation(operation.to_owned()))?;

        let required = op.inputs.iter().filter(|p| !p.optional).count();
        if args.len() < required || args.len() > op.inputs.len() {
            return Err(ProxyError::ArityMismatch {
                operation: operation.to_owned(),
                expected: op.inputs.len(),
                got: args.len(),
            });
        }

        let ns = self.descriptor.namespace.as_str();
        let mut wrapper = Element::new(ns.to_owned(), operation.to_owned());
        for (param, arg) in op.inputs.iter().zip(args) {
            if !arg.conforms_to(&param.ty) {
                return Err(ProxyError::TypeMismatch {
                    operation: operation.to_owned(),
                    param: param.name.clone(),
                    expected: param.ty.type_ref(),
                });
            }
            if matches!(arg, Value::Null) && param.optional {
                continue; // omitted optional argument
            }
            wrapper.push_element(value_element(ns, &param.name, arg));
        }

        let mut envelope = Envelope::request(wrapper);
        envelope.set_addressing(MessageHeaders::request(
            self.endpoint.clone(),
            self.action(operation),
        ));
        Ok(envelope)
    }

    /// Decode the response to `operation`: a fault becomes
    /// [`ProxyError::Fault`]; a result is decoded against the declared
    /// output type (resolving complex types through the service schema).
    pub fn decode_response(
        &self,
        operation: &str,
        response: &Envelope,
    ) -> Result<Value, ProxyError> {
        if let Some(fault) = response.fault_body() {
            return Err(ProxyError::Fault(Box::new(fault.clone())));
        }
        let op = self
            .descriptor
            .find_operation(operation)
            .ok_or_else(|| ProxyError::NoSuchOperation(operation.to_owned()))?;
        let Some(output) = &op.output else {
            return Ok(Value::Null); // one-way: nothing to decode
        };
        let payload = response
            .payload()
            .ok_or_else(|| ProxyError::BadResponse("response body is empty".to_owned()))?;
        let expected_wrapper = format!("{operation}Response");
        if payload.name().local_name() != expected_wrapper {
            return Err(ProxyError::BadResponse(format!(
                "expected {expected_wrapper} wrapper, found {:?}",
                payload.name()
            )));
        }
        let ret = payload
            .find_local("return")
            .ok_or_else(|| ProxyError::BadResponse("response lacks return element".to_owned()))?;
        decode_typed(ret, &output.ty, &self.descriptor.schema)
            .map_err(|e| ProxyError::BadResponse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Port, TransportKind};
    use crate::service::OperationDef;
    use crate::xsd::{ComplexType, FieldDef, Schema, XsdType};

    fn echo_proxy() -> ServiceProxy {
        ServiceProxy::new(ServiceDescriptor::echo(), "http://h:1/Echo")
    }

    #[test]
    fn encode_sets_addressing() {
        let env = echo_proxy()
            .encode_request("echoString", &[Value::string("x")])
            .unwrap();
        let wsa = env.addressing().unwrap();
        assert_eq!(wsa.to.as_deref(), Some("http://h:1/Echo"));
        assert_eq!(wsa.action.as_deref(), Some("http://h:1/Echo#echoString"));
        assert!(wsa.message_id.is_some());
    }

    #[test]
    fn unknown_operation_rejected() {
        let err = echo_proxy().encode_request("nope", &[]).unwrap_err();
        assert_eq!(err, ProxyError::NoSuchOperation("nope".into()));
    }

    #[test]
    fn arity_checked() {
        let err = echo_proxy().encode_request("echoString", &[]).unwrap_err();
        assert!(matches!(
            err,
            ProxyError::ArityMismatch {
                expected: 1,
                got: 0,
                ..
            }
        ));
        let err = echo_proxy()
            .encode_request("echoString", &[Value::string("a"), Value::string("b")])
            .unwrap_err();
        assert!(matches!(err, ProxyError::ArityMismatch { got: 2, .. }));
    }

    #[test]
    fn types_checked() {
        let err = echo_proxy()
            .encode_request("echoString", &[Value::Int(3)])
            .unwrap_err();
        assert!(matches!(err, ProxyError::TypeMismatch { .. }));
    }

    #[test]
    fn fault_response_surfaces_as_error() {
        let response = Envelope::fault(Fault::receiver("kaput"));
        let err = echo_proxy()
            .decode_response("echoString", &response)
            .unwrap_err();
        assert!(matches!(err, ProxyError::Fault(f) if f.reason == "kaput"));
    }

    #[test]
    fn wrong_wrapper_rejected() {
        let response = Envelope::request(Element::new("urn:wspeer:echo", "otherResponse"));
        let err = echo_proxy()
            .decode_response("echoString", &response)
            .unwrap_err();
        assert!(matches!(err, ProxyError::BadResponse(_)));
    }

    #[test]
    fn complex_return_decoded_through_schema() {
        let mut schema = Schema::new();
        schema.define(
            "Frame",
            ComplexType::new(vec![
                FieldDef::new("step", XsdType::Int),
                FieldDef::new("label", XsdType::String),
            ]),
        );
        let descriptor = ServiceDescriptor::new("Feed", "urn:feed")
            .with_schema(schema)
            .operation(OperationDef::new("next").returns(XsdType::Complex("Frame".into())));
        let proxy = ServiceProxy::new(descriptor, "urn:e");

        // Hand-build the response the engine would produce.
        let frame = Value::Struct(vec![
            ("step".into(), Value::Int(7)),
            ("label".into(), Value::string("t=0.7")),
        ]);
        let mut wrapper = Element::new("urn:feed", "nextResponse");
        wrapper.push_element(value_element("urn:feed", "return", &frame));
        let response = Envelope::request(wrapper);

        let got = proxy.decode_response("next", &response).unwrap();
        assert_eq!(got.field("step").unwrap().as_int(), Some(7));
        assert_eq!(got.field("label").unwrap().as_str(), Some("t=0.7"));
    }

    #[test]
    fn from_wsdl_selects_port() {
        let doc = WsdlDocument::new(
            ServiceDescriptor::echo(),
            vec![
                Port {
                    name: "A".into(),
                    transport: TransportKind::Http,
                    location: "http://a/Echo".into(),
                },
                Port {
                    name: "B".into(),
                    transport: TransportKind::P2ps,
                    location: "p2ps://b/Echo".into(),
                },
            ],
        );
        assert_eq!(
            ServiceProxy::from_wsdl(&doc, None).unwrap().endpoint(),
            "http://a/Echo"
        );
        assert_eq!(
            ServiceProxy::from_wsdl(&doc, Some("B")).unwrap().endpoint(),
            "p2ps://b/Echo"
        );
        assert!(ServiceProxy::from_wsdl(&doc, Some("C")).is_err());
    }

    #[test]
    fn round_trip_through_wire_xml() {
        // Proxy-encoded envelope survives serialisation before reaching
        // the engine (as it does over a real transport).
        let env = echo_proxy()
            .encode_request("echoString", &[Value::string("déjà <vu>")])
            .unwrap();
        let wire = env.to_xml();
        let back = Envelope::from_xml(&wire).unwrap();
        assert_eq!(
            back.payload().unwrap().find_local("text").unwrap().text(),
            "déjà <vu>"
        );
    }
}

//! Service descriptors and handlers: the application-facing contract.
//!
//! A [`ServiceDescriptor`] is the "code source" of the paper's deployment
//! story: WSPeer generates a WSDL interface description from it and
//! creates an addressable endpoint for it. A [`ServiceHandler`] is the
//! application object the service fronts — possibly a *stateful* object,
//! and via [`OperationRouter`] each operation can map to a different
//! object in memory (Section III, point 3).

use crate::value::Value;
use crate::xsd::{Schema, XsdType};
use std::collections::HashMap;
use std::sync::Arc;
use wsp_soap::Fault;

/// One named, typed parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub name: String,
    pub ty: XsdType,
    /// Optional parameters decode to `Value::Null` when absent.
    pub optional: bool,
}

impl Param {
    pub fn new(name: impl Into<String>, ty: XsdType) -> Self {
        Param {
            name: name.into(),
            ty,
            optional: false,
        }
    }

    pub fn optional(name: impl Into<String>, ty: XsdType) -> Self {
        Param {
            name: name.into(),
            ty,
            optional: true,
        }
    }
}

/// One operation: a name, input parameters and an optional output.
/// `output: None` models a WSDL one-way operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDef {
    pub name: String,
    pub inputs: Vec<Param>,
    pub output: Option<Param>,
    pub documentation: Option<String>,
}

impl OperationDef {
    pub fn new(name: impl Into<String>) -> Self {
        OperationDef {
            name: name.into(),
            inputs: Vec::new(),
            output: None,
            documentation: None,
        }
    }

    pub fn input(mut self, name: impl Into<String>, ty: XsdType) -> Self {
        self.inputs.push(Param::new(name, ty));
        self
    }

    pub fn optional_input(mut self, name: impl Into<String>, ty: XsdType) -> Self {
        self.inputs.push(Param::optional(name, ty));
        self
    }

    pub fn returns(mut self, ty: XsdType) -> Self {
        self.output = Some(Param::new("return", ty));
        self
    }

    pub fn one_way(mut self) -> Self {
        self.output = None;
        self
    }

    pub fn doc(mut self, text: impl Into<String>) -> Self {
        self.documentation = Some(text.into());
        self
    }

    /// True if a reply message is expected.
    pub fn expects_response(&self) -> bool {
        self.output.is_some()
    }
}

/// The full public contract of a service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDescriptor {
    /// Service name; becomes the WSDL `service`/`portType` names and the
    /// path component of the service URI.
    pub name: String,
    /// Target namespace of the service's messages.
    pub namespace: String,
    pub operations: Vec<OperationDef>,
    pub schema: Schema,
    pub documentation: Option<String>,
    /// Discovery metadata: published as UDDI categories or P2PS
    /// attributes (not part of the WSDL contract).
    pub properties: Vec<(String, String)>,
}

impl ServiceDescriptor {
    pub fn new(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        ServiceDescriptor {
            name: name.into(),
            namespace: namespace.into(),
            operations: Vec::new(),
            schema: Schema::new(),
            documentation: None,
            properties: Vec::new(),
        }
    }

    /// Attach discovery metadata (UDDI category / P2PS attribute).
    pub fn property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.push((key.into(), value.into()));
        self
    }

    pub fn operation(mut self, op: OperationDef) -> Self {
        self.operations.push(op);
        self
    }

    pub fn with_schema(mut self, schema: Schema) -> Self {
        self.schema = schema;
        self
    }

    pub fn doc(mut self, text: impl Into<String>) -> Self {
        self.documentation = Some(text.into());
        self
    }

    /// Look up an operation by name.
    pub fn find_operation(&self, name: &str) -> Option<&OperationDef> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// The `Action` URI for an operation at a given endpoint address,
    /// following the paper's scheme: address + `#` + operation.
    pub fn action_uri(&self, endpoint: &str, operation: &str) -> String {
        format!("{endpoint}#{operation}")
    }

    /// The classic demo service used throughout the paper's examples:
    /// `Echo` with an `echoString` operation.
    pub fn echo() -> Self {
        ServiceDescriptor::new("Echo", "urn:wspeer:echo")
            .doc("Echoes its input string back to the caller")
            .operation(
                OperationDef::new("echoString")
                    .input("text", XsdType::String)
                    .returns(XsdType::String),
            )
    }
}

/// The application side of a deployed service.
///
/// Handlers receive decoded argument values in declaration order and
/// return a result value (ignored for one-way operations) or a fault.
/// Implementations may hold arbitrary state — that is the point of
/// WSPeer's "the component becomes its own container" model.
pub trait ServiceHandler: Send + Sync {
    fn invoke(&self, operation: &str, args: &[Value]) -> Result<Value, Fault>;
}

impl<F> ServiceHandler for F
where
    F: Fn(&str, &[Value]) -> Result<Value, Fault> + Send + Sync,
{
    fn invoke(&self, operation: &str, args: &[Value]) -> Result<Value, Fault> {
        self(operation, args)
    }
}

/// Routes each operation to its own handler object, so one service can
/// front several stateful objects in memory (paper Section III: "each
/// operation given to the service can map to a different stateful object").
#[derive(Default)]
pub struct OperationRouter {
    routes: HashMap<String, Arc<dyn ServiceHandler>>,
    fallback: Option<Arc<dyn ServiceHandler>>,
}

impl OperationRouter {
    pub fn new() -> Self {
        OperationRouter::default()
    }

    /// Route `operation` to `handler`.
    pub fn route(mut self, operation: impl Into<String>, handler: Arc<dyn ServiceHandler>) -> Self {
        self.routes.insert(operation.into(), handler);
        self
    }

    /// Route a single operation to a closure over some captured object.
    pub fn route_fn<F>(self, operation: impl Into<String>, f: F) -> Self
    where
        F: Fn(&[Value]) -> Result<Value, Fault> + Send + Sync + 'static,
    {
        struct OpFn<F>(F);
        impl<F> ServiceHandler for OpFn<F>
        where
            F: Fn(&[Value]) -> Result<Value, Fault> + Send + Sync,
        {
            fn invoke(&self, _operation: &str, args: &[Value]) -> Result<Value, Fault> {
                (self.0)(args)
            }
        }
        self.route(operation, Arc::new(OpFn(f)))
    }

    /// Handler consulted for operations with no explicit route.
    pub fn fallback(mut self, handler: Arc<dyn ServiceHandler>) -> Self {
        self.fallback = Some(handler);
        self
    }
}

impl ServiceHandler for OperationRouter {
    fn invoke(&self, operation: &str, args: &[Value]) -> Result<Value, Fault> {
        match self.routes.get(operation).or(self.fallback.as_ref()) {
            Some(h) => h.invoke(operation, args),
            None => Err(Fault::sender(format!(
                "no handler for operation {operation:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_descriptor_shape() {
        let d = ServiceDescriptor::echo();
        let op = d.find_operation("echoString").unwrap();
        assert_eq!(op.inputs.len(), 1);
        assert!(op.expects_response());
        assert!(d.find_operation("missing").is_none());
    }

    #[test]
    fn action_uri_uses_fragment() {
        let d = ServiceDescriptor::echo();
        assert_eq!(
            d.action_uri("p2ps://1234/Echo", "echoString"),
            "p2ps://1234/Echo#echoString"
        );
    }

    #[test]
    fn closures_are_handlers() {
        let h = |op: &str, args: &[Value]| -> Result<Value, Fault> {
            assert_eq!(op, "f");
            Ok(args[0].clone())
        };
        assert_eq!(h.invoke("f", &[Value::Int(3)]).unwrap(), Value::Int(3));
    }

    #[test]
    fn router_dispatches_per_operation() {
        let router = OperationRouter::new()
            .route_fn("a", |_| Ok(Value::string("from-a")))
            .route_fn("b", |_| Ok(Value::string("from-b")));
        assert_eq!(router.invoke("a", &[]).unwrap(), Value::string("from-a"));
        assert_eq!(router.invoke("b", &[]).unwrap(), Value::string("from-b"));
        let err = router.invoke("c", &[]).unwrap_err();
        assert!(err.reason.contains("c"));
    }

    #[test]
    fn router_fallback() {
        let router = OperationRouter::new().fallback(Arc::new(
            |op: &str, _args: &[Value]| -> Result<Value, Fault> {
                Ok(Value::string(format!("fallback:{op}")))
            },
        ));
        assert_eq!(
            router.invoke("x", &[]).unwrap(),
            Value::string("fallback:x")
        );
    }

    #[test]
    fn stateful_handler_mutates_captured_state() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let counter = Arc::new(AtomicI64::new(0));
        let c = counter.clone();
        let router = OperationRouter::new().route_fn("inc", move |_| {
            Ok(Value::Int(c.fetch_add(1, Ordering::SeqCst) + 1))
        });
        assert_eq!(router.invoke("inc", &[]).unwrap(), Value::Int(1));
        assert_eq!(router.invoke("inc", &[]).unwrap(), Value::Int(2));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}

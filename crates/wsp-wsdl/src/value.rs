//! The dynamic value model used on both sides of an invocation.
//!
//! Axis maps SOAP payloads onto Java objects via generated stubs; the
//! Rust equivalent (see `DESIGN.md`) is a small dynamically-typed value
//! tree validated against the WSDL schema at call time. `Value` is what
//! application handlers receive as arguments and return as results.

use crate::base64;
use crate::xsd::XsdType;
use std::fmt;
use wsp_xml::{Element, Node, QName};

/// XML Schema instance namespace (for `xsi:nil`).
pub const XSI_NS: &str = "http://www.w3.org/2001/XMLSchema-instance";

/// A dynamically typed value travelling through an invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `xsi:nil` / absent optional value.
    Null,
    Bool(bool),
    /// All XSD integer flavours collapse to `i64`.
    Int(i64),
    Double(f64),
    String(String),
    /// `xsd:base64Binary`.
    Bytes(Vec<u8>),
    /// Homogeneous sequence (a `maxOccurs="unbounded"` element).
    Array(Vec<Value>),
    /// Named fields of a complex type, in declaration order.
    Struct(Vec<(String, Value)>),
}

impl Value {
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// The [`XsdType`] that naturally describes this value.
    pub fn natural_type(&self) -> XsdType {
        match self {
            Value::Null => XsdType::AnyType,
            Value::Bool(_) => XsdType::Boolean,
            Value::Int(_) => XsdType::Int,
            Value::Double(_) => XsdType::Double,
            Value::String(_) => XsdType::String,
            Value::Bytes(_) => XsdType::Base64Binary,
            Value::Array(items) => XsdType::Array(Box::new(
                items
                    .first()
                    .map(Value::natural_type)
                    .unwrap_or(XsdType::AnyType),
            )),
            Value::Struct(_) => XsdType::AnyType,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Field of a struct value by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Encode this value as the contents of `element` (text children for
    /// simple types, child elements for structs/arrays).
    pub fn encode_into(&self, ns: &str, element: &mut Element) {
        match self {
            Value::Null => {
                element.set_attribute(QName::new(XSI_NS, "nil"), "true");
            }
            Value::Bool(b) => element.push_text(if *b { "true" } else { "false" }),
            Value::Int(i) => element.push_text(i.to_string()),
            Value::Double(d) => element.push_text(format_double(*d)),
            Value::String(s) => element.push_text(s.clone()),
            Value::Bytes(b) => element.push_text(base64::encode(b)),
            Value::Array(items) => {
                for item in items {
                    let mut child = Element::new(ns.to_owned(), "item");
                    item.encode_into(ns, &mut child);
                    element.push_element(child);
                }
            }
            Value::Struct(fields) => {
                for (name, value) in fields {
                    let mut child = Element::new(ns.to_owned(), name.clone());
                    value.encode_into(ns, &mut child);
                    element.push_element(child);
                }
            }
        }
    }

    /// Decode an element's contents as `expected`.
    ///
    /// Complex (`Complex`) types must be resolved by the caller (the
    /// schema layer) before calling this; here they decode as structs of
    /// whatever children are present.
    pub fn decode(element: &Element, expected: &XsdType) -> Result<Value, ValueError> {
        if element.attribute(XSI_NS, "nil") == Some("true") {
            return Ok(Value::Null);
        }
        let text = element.text();
        let text = text.trim();
        match expected {
            XsdType::Boolean => match text {
                "true" | "1" => Ok(Value::Bool(true)),
                "false" | "0" => Ok(Value::Bool(false)),
                other => Err(ValueError::BadLexical {
                    ty: "boolean",
                    text: other.to_owned(),
                }),
            },
            XsdType::Int | XsdType::Long => {
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| ValueError::BadLexical {
                        ty: "integer",
                        text: text.to_owned(),
                    })
            }
            XsdType::Double => {
                parse_double(text)
                    .map(Value::Double)
                    .ok_or_else(|| ValueError::BadLexical {
                        ty: "double",
                        text: text.to_owned(),
                    })
            }
            XsdType::String => Ok(Value::String(element.text())),
            XsdType::Base64Binary => {
                base64::decode(text)
                    .map(Value::Bytes)
                    .ok_or_else(|| ValueError::BadLexical {
                        ty: "base64Binary",
                        text: text.to_owned(),
                    })
            }
            XsdType::Array(item_ty) => {
                let mut items = Vec::new();
                for child in element.child_elements() {
                    items.push(Value::decode(child, item_ty)?);
                }
                Ok(Value::Array(items))
            }
            XsdType::AnyType | XsdType::Complex(_) => Ok(Value::decode_untyped(element)),
        }
    }

    /// Best-effort decode with no schema: elements with children become
    /// structs (or arrays when every child is named `item`), leaves
    /// become strings.
    pub fn decode_untyped(element: &Element) -> Value {
        let children: Vec<&Element> = element.child_elements().collect();
        if children.is_empty() {
            return Value::String(element.text());
        }
        if children.iter().all(|c| c.name().local_name() == "item") {
            return Value::Array(children.into_iter().map(Value::decode_untyped).collect());
        }
        Value::Struct(
            children
                .into_iter()
                .map(|c| (c.name().local_name().to_owned(), Value::decode_untyped(c)))
                .collect(),
        )
    }

    /// True when this value is acceptable where `expected` is required.
    pub fn conforms_to(&self, expected: &XsdType) -> bool {
        match (self, expected) {
            (_, XsdType::AnyType) => true,
            (Value::Null, _) => true,
            (Value::Bool(_), XsdType::Boolean) => true,
            (Value::Int(_), XsdType::Int | XsdType::Long | XsdType::Double) => true,
            (Value::Double(_), XsdType::Double) => true,
            (Value::String(_), XsdType::String) => true,
            (Value::Bytes(_), XsdType::Base64Binary) => true,
            (Value::Array(items), XsdType::Array(item_ty)) => {
                items.iter().all(|i| i.conforms_to(item_ty))
            }
            (Value::Struct(_), XsdType::Complex(_)) => true,
            _ => false,
        }
    }

    /// Approximate wire size, used by benches to label payload scales.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Bool(_) => 5,
            Value::Int(_) => 12,
            Value::Double(_) => 16,
            Value::String(s) => s.len(),
            Value::Bytes(b) => b.len() * 4 / 3,
            Value::Array(items) => {
                items.iter().map(Value::approx_size).sum::<usize>() + items.len() * 13
            }
            Value::Struct(fields) => fields
                .iter()
                .map(|(n, v)| n.len() * 2 + 5 + v.approx_size())
                .sum(),
        }
    }
}

/// Render a double in XSD lexical space (plain decimal / scientific,
/// with NaN/INF spellings).
fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_owned()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_owned()
        } else {
            "-INF".to_owned()
        }
    } else {
        // Rust's Display for f64 is shortest-round-trip, which is valid
        // XSD lexical form.
        format!("{d}")
    }
}

fn parse_double(text: &str) -> Option<f64> {
    match text {
        "NaN" => Some(f64::NAN),
        "INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        t => t.parse().ok(),
    }
}

/// Decode an element against `ty`, resolving named complex types through
/// `schema`: struct fields are decoded per their declared types, missing
/// optional fields become `Null`, and missing required fields are errors.
pub fn decode_typed(
    element: &Element,
    ty: &XsdType,
    schema: &crate::xsd::Schema,
) -> Result<Value, ValueError> {
    match ty {
        XsdType::Complex(name) => {
            let Some(complex) = schema.get(name) else {
                // Unknown named type: fall back to the untyped heuristic.
                return Ok(Value::decode_untyped(element));
            };
            if is_nil(element) {
                return Ok(Value::Null);
            }
            let mut fields = Vec::with_capacity(complex.fields.len());
            for field in &complex.fields {
                match element.find_local(&field.name) {
                    Some(child) => {
                        fields.push((field.name.clone(), decode_typed(child, &field.ty, schema)?))
                    }
                    None if field.optional => fields.push((field.name.clone(), Value::Null)),
                    None => {
                        return Err(ValueError::MissingField {
                            ty: name.clone(),
                            field: field.name.clone(),
                        })
                    }
                }
            }
            Ok(Value::Struct(fields))
        }
        XsdType::Array(item_ty) => {
            if is_nil(element) {
                return Ok(Value::Null);
            }
            let mut items = Vec::new();
            for child in element.child_elements() {
                items.push(decode_typed(child, item_ty, schema)?);
            }
            Ok(Value::Array(items))
        }
        simple => Value::decode(element, simple),
    }
}

/// Errors produced while decoding values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    BadLexical { ty: &'static str, text: String },
    MissingField { ty: String, field: String },
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::BadLexical { ty, text } => {
                write!(f, "{text:?} is not a valid xsd:{ty}")
            }
            ValueError::MissingField { ty, field } => {
                write!(f, "complex type {ty} is missing required field {field:?}")
            }
        }
    }
}

impl std::error::Error for ValueError {}

/// Convenience: wrap a value as a named element in `ns`.
pub fn value_element(ns: &str, name: &str, value: &Value) -> Element {
    let mut e = Element::new(ns.to_owned(), name.to_owned());
    value.encode_into(ns, &mut e);
    e
}

/// True if the element is marked `xsi:nil`.
pub fn is_nil(element: &Element) -> bool {
    element.attribute(XSI_NS, "nil") == Some("true")
}

/// Strip text children (used when normalising struct wrappers that
/// contained stray whitespace).
pub fn element_only_children(element: &Element) -> impl Iterator<Item = &Element> {
    element.children().iter().filter_map(Node::as_element)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value, ty: &XsdType) -> Value {
        let e = value_element("urn:t", "v", value);
        let xml = e.to_xml();
        let parsed = wsp_xml::parse(&xml).unwrap();
        Value::decode(&parsed, ty).unwrap()
    }

    #[test]
    fn simple_round_trips() {
        assert_eq!(
            round_trip(&Value::Bool(true), &XsdType::Boolean),
            Value::Bool(true)
        );
        assert_eq!(round_trip(&Value::Int(-42), &XsdType::Int), Value::Int(-42));
        assert_eq!(
            round_trip(&Value::Double(2.5), &XsdType::Double),
            Value::Double(2.5)
        );
        assert_eq!(
            round_trip(&Value::string("hi <x>"), &XsdType::String),
            Value::string("hi <x>")
        );
        assert_eq!(
            round_trip(&Value::Bytes(vec![1, 2, 255]), &XsdType::Base64Binary),
            Value::Bytes(vec![1, 2, 255])
        );
    }

    #[test]
    fn special_doubles_round_trip() {
        assert_eq!(
            round_trip(&Value::Double(f64::INFINITY), &XsdType::Double),
            Value::Double(f64::INFINITY)
        );
        let nan = round_trip(&Value::Double(f64::NAN), &XsdType::Double);
        assert!(matches!(nan, Value::Double(d) if d.is_nan()));
    }

    #[test]
    fn null_round_trips_via_nil() {
        assert_eq!(round_trip(&Value::Null, &XsdType::String), Value::Null);
    }

    #[test]
    fn array_round_trip() {
        let v = Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let ty = XsdType::Array(Box::new(XsdType::Int));
        assert_eq!(round_trip(&v, &ty), v);
    }

    #[test]
    fn empty_array_round_trip() {
        let v = Value::Array(vec![]);
        let ty = XsdType::Array(Box::new(XsdType::Int));
        assert_eq!(round_trip(&v, &ty), v);
    }

    #[test]
    fn struct_decodes_untyped() {
        let v = Value::Struct(vec![
            ("name".into(), Value::string("cactus")),
            ("step".into(), Value::string("7")),
        ]);
        let e = value_element("urn:t", "v", &v);
        let parsed = wsp_xml::parse(&e.to_xml()).unwrap();
        assert_eq!(Value::decode_untyped(&parsed), v);
    }

    #[test]
    fn nested_struct_with_array() {
        let v = Value::Struct(vec![(
            "frames".into(),
            Value::Array(vec![Value::string("a"), Value::string("b")]),
        )]);
        let e = value_element("urn:t", "v", &v);
        let parsed = wsp_xml::parse(&e.to_xml()).unwrap();
        let got = Value::decode_untyped(&parsed);
        // Untyped arrays inside structs decode as struct field with array.
        assert_eq!(got.field("frames").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn bad_lexical_forms_rejected() {
        let e = wsp_xml::parse("<v>not a value!</v>").unwrap();
        assert!(Value::decode(&e, &XsdType::Int).is_err());
        assert!(Value::decode(&e, &XsdType::Boolean).is_err());
        assert!(Value::decode(&e, &XsdType::Double).is_err());
        assert!(Value::decode(&e, &XsdType::Base64Binary).is_err());
    }

    #[test]
    fn boolean_accepts_numeric_forms() {
        let e = wsp_xml::parse("<v>1</v>").unwrap();
        assert_eq!(
            Value::decode(&e, &XsdType::Boolean).unwrap(),
            Value::Bool(true)
        );
        let e = wsp_xml::parse("<v>0</v>").unwrap();
        assert_eq!(
            Value::decode(&e, &XsdType::Boolean).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Int(1).conforms_to(&XsdType::Int));
        assert!(Value::Int(1).conforms_to(&XsdType::Double)); // widening ok
        assert!(!Value::Double(1.0).conforms_to(&XsdType::Int));
        assert!(Value::Null.conforms_to(&XsdType::String));
        assert!(Value::string("x").conforms_to(&XsdType::AnyType));
        assert!(
            Value::Array(vec![Value::Int(1)]).conforms_to(&XsdType::Array(Box::new(XsdType::Int)))
        );
        assert!(!Value::Array(vec![Value::string("x")])
            .conforms_to(&XsdType::Array(Box::new(XsdType::Int))));
    }

    #[test]
    fn natural_types() {
        assert_eq!(Value::Int(1).natural_type(), XsdType::Int);
        assert_eq!(
            Value::Array(vec![Value::Bool(true)]).natural_type(),
            XsdType::Array(Box::new(XsdType::Boolean))
        );
    }

    #[test]
    fn field_access() {
        let v = Value::Struct(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.field("a").unwrap().as_int(), Some(1));
        assert!(v.field("b").is_none());
        assert!(Value::Int(1).field("a").is_none());
    }
}

#[cfg(test)]
mod decode_typed_tests {
    use super::*;
    use crate::xsd::{ComplexType, FieldDef, Schema};

    fn frame_schema() -> Schema {
        let mut schema = Schema::new();
        schema.define(
            "Frame",
            ComplexType::new(vec![
                FieldDef::new("step", XsdType::Int),
                FieldDef::optional("label", XsdType::String),
            ]),
        );
        schema.define(
            "Batch",
            ComplexType::new(vec![FieldDef::new(
                "frames",
                XsdType::Array(Box::new(XsdType::Complex("Frame".into()))),
            )]),
        );
        schema
    }

    #[test]
    fn missing_required_field_is_error() {
        let e = wsp_xml::parse(r#"<f><label>only</label></f>"#).unwrap();
        let err = decode_typed(&e, &XsdType::Complex("Frame".into()), &frame_schema()).unwrap_err();
        assert!(matches!(err, ValueError::MissingField { field, .. } if field == "step"));
    }

    #[test]
    fn missing_optional_field_becomes_null() {
        let e = wsp_xml::parse(r#"<f><step>3</step></f>"#).unwrap();
        let v = decode_typed(&e, &XsdType::Complex("Frame".into()), &frame_schema()).unwrap();
        assert_eq!(v.field("step").unwrap().as_int(), Some(3));
        assert_eq!(v.field("label"), Some(&Value::Null));
    }

    #[test]
    fn nested_complex_arrays_decode() {
        let batch = Value::Struct(vec![(
            "frames".into(),
            Value::Array(vec![
                Value::Struct(vec![
                    ("step".into(), Value::Int(1)),
                    ("label".into(), Value::string("a")),
                ]),
                Value::Struct(vec![
                    ("step".into(), Value::Int(2)),
                    ("label".into(), Value::string("b")),
                ]),
            ]),
        )]);
        let e = value_element("urn:t", "b", &batch);
        let parsed = wsp_xml::parse(&e.to_xml()).unwrap();
        let v = decode_typed(&parsed, &XsdType::Complex("Batch".into()), &frame_schema()).unwrap();
        let frames = v.field("frames").unwrap().as_array().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].field("step").unwrap().as_int(), Some(2));
    }

    #[test]
    fn unknown_complex_type_falls_back_to_untyped() {
        let e = wsp_xml::parse(r#"<x><a>1</a></x>"#).unwrap();
        let v = decode_typed(&e, &XsdType::Complex("Ghost".into()), &Schema::new()).unwrap();
        assert_eq!(v.field("a").unwrap().as_str(), Some("1"));
    }

    #[test]
    fn nil_complex_and_array_are_null() {
        let e = wsp_xml::parse(&format!(r#"<x xmlns:xsi="{XSI_NS}" xsi:nil="true"/>"#)).unwrap();
        assert_eq!(
            decode_typed(&e, &XsdType::Complex("Frame".into()), &frame_schema()).unwrap(),
            Value::Null
        );
        assert_eq!(
            decode_typed(&e, &XsdType::Array(Box::new(XsdType::Int)), &frame_schema()).unwrap(),
            Value::Null
        );
    }
}

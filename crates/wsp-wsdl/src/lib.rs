//! # wsp-wsdl
//!
//! Service description for the WSPeer stack: a WSDL 1.1 document model
//! with generation and parsing, a small XSD subset, the dynamic `Value`
//! model used at invocation time, the server-side [`MessageEngine`]
//! (our Apache Axis substitute) and the client-side [`ServiceProxy`]
//! (the stub-generation substitute) — see `DESIGN.md` for the
//! substitution rationale.
//!
//! The deployment pipeline is: the application describes itself with a
//! [`ServiceDescriptor`] ("the code source"), WSPeer turns it into a
//! [`WsdlDocument`] with concrete endpoint [`Port`]s, and pairs it with a
//! [`ServiceHandler`] inside a [`MessageEngine`]. Consumers parse the
//! WSDL back and drive the service through a [`ServiceProxy`].
//!
//! ```
//! use std::sync::Arc;
//! use wsp_wsdl::{MessageEngine, ServiceDescriptor, ServiceProxy, Value};
//!
//! let engine = MessageEngine::new(
//!     ServiceDescriptor::echo(),
//!     Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
//! );
//! let proxy = ServiceProxy::new(ServiceDescriptor::echo(), "http://host/Echo");
//! let request = proxy.encode_request("echoString", &[Value::string("hi")]).unwrap();
//! let response = engine.process(&request).unwrap();
//! assert_eq!(proxy.decode_response("echoString", &response).unwrap(),
//!            Value::string("hi"));
//! ```

pub mod base64;
pub mod engine;
pub mod model;
pub mod proxy;
pub mod service;
pub mod value;
pub mod xsd;

pub use engine::MessageEngine;
pub use model::{Port, TransportKind, WsdlDocument, WsdlError, WSDL_NS, WSDL_SOAP_NS};
pub use proxy::{ProxyError, ServiceProxy};
pub use service::{OperationDef, OperationRouter, Param, ServiceDescriptor, ServiceHandler};
pub use value::{decode_typed, Value, ValueError};
pub use xsd::{ComplexType, FieldDef, Schema, XsdType, XSD_NS};

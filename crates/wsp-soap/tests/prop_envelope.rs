//! Property tests: any envelope the API can construct survives the
//! wire, and the codec never panics on arbitrary input.

use proptest::prelude::*;
use wsp_soap::{EndpointReference, Envelope, Fault, FaultCode, HeaderBlock, MessageHeaders};
use wsp_xml::Element;

fn ncname() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_-]{0,10}"
}

fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,32}")
        .unwrap()
        .prop_map(|s| s.replace('\r', " "))
}

fn uri() -> impl Strategy<Value = String> {
    (ncname(), ncname()).prop_map(|(a, b)| format!("urn:{a}:{b}"))
}

fn payload_element() -> impl Strategy<Value = Element> {
    (
        uri(),
        ncname(),
        proptest::collection::vec((ncname(), text()), 0..4),
        text(),
    )
        .prop_map(|(ns, local, children, t)| {
            let mut e = Element::new(ns.clone(), local);
            for (cname, ctext) in children {
                e.push_element(Element::build(ns.clone(), cname).text(ctext).finish());
            }
            e.push_text(t);
            e
        })
}

fn epr() -> impl Strategy<Value = EndpointReference> {
    (uri(), proptest::collection::vec((ncname(), text()), 0..3)).prop_map(|(address, props)| {
        let mut epr = EndpointReference::new(address);
        for (name, value) in props {
            epr = epr.with_property(Element::build("urn:props", name).text(value).finish());
        }
        epr
    })
}

fn headers() -> impl Strategy<Value = MessageHeaders> {
    (
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of(epr()),
        proptest::option::of(epr()),
    )
        .prop_map(|(to, action, relates_to, reply_to, from)| MessageHeaders {
            to,
            action,
            message_id: Some("urn:wsp:msg:prop-test".into()),
            relates_to,
            reply_to,
            fault_to: None,
            from,
            destination_properties: Vec::new(),
        })
}

fn fault() -> impl Strategy<Value = Fault> {
    (
        prop_oneof![
            Just(FaultCode::Sender),
            Just(FaultCode::Receiver),
            Just(FaultCode::MustUnderstand),
            Just(FaultCode::VersionMismatch),
            Just(FaultCode::DataEncodingUnknown),
        ],
        text().prop_filter("non-empty reason", |t| !t.trim().is_empty()),
    )
        .prop_map(|(code, reason)| Fault::new(code, reason.trim().to_owned()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_envelopes_round_trip(payload in payload_element(), hdrs in headers(),
                                    extra in proptest::collection::vec(payload_element(), 0..3)) {
        let mut env = Envelope::request(payload);
        env.set_addressing(hdrs);
        for e in extra {
            env.add_header(HeaderBlock::new(e));
        }
        let wire = env.to_xml();
        let back = Envelope::from_xml(&wire).expect("must parse");
        prop_assert_eq!(back, env, "wire:\n{}", wire);
    }

    #[test]
    fn fault_envelopes_round_trip(f in fault()) {
        let env = Envelope::fault(f);
        let back = Envelope::from_xml(&env.to_xml()).expect("must parse");
        prop_assert_eq!(back, env);
    }

    #[test]
    fn decoder_never_panics(junk in "[ -~<>/]{0,120}") {
        let _ = Envelope::from_xml(&junk);
    }

    #[test]
    fn epr_mapping_total(e in epr()) {
        let elem = e.to_element("ReplyTo");
        let xml = elem.to_xml();
        let parsed = wsp_xml::parse(&xml).unwrap();
        let back = EndpointReference::from_element(&parsed).expect("EPR parses");
        prop_assert_eq!(back, e);
    }
}

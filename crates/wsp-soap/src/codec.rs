//! Wire codec: envelope ⇄ XML text, plus the SOAP-level error type.

use crate::constants::{SOAP_ENV_NS, WSA_NS};
use crate::envelope::Envelope;
use crate::fault::{Fault, FaultCode};
use std::fmt;
use wsp_xml::{Writer, WriterConfig, XmlError};

/// Errors raised while decoding a SOAP message.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapError {
    /// The bytes were not well-formed XML.
    Xml(XmlError),
    /// The root element was not a SOAP 1.2 envelope.
    VersionMismatch { found: String },
    /// The envelope had no `env:Body`.
    MissingBody,
}

impl SoapError {
    /// The fault a conforming node returns for this decode error.
    pub fn to_fault(&self) -> Fault {
        match self {
            SoapError::Xml(e) => Fault::new(FaultCode::Sender, format!("malformed XML: {e}")),
            SoapError::VersionMismatch { found } => Fault::new(
                FaultCode::VersionMismatch,
                format!("unsupported envelope {found}; this node speaks SOAP 1.2"),
            ),
            SoapError::MissingBody => Fault::new(FaultCode::Sender, "envelope has no Body"),
        }
    }
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "XML error: {e}"),
            SoapError::VersionMismatch { found } => {
                write!(f, "not a SOAP 1.2 envelope (root {found})")
            }
            SoapError::MissingBody => write!(f, "envelope has no Body"),
        }
    }
}

impl std::error::Error for SoapError {}

impl From<XmlError> for SoapError {
    fn from(e: XmlError) -> Self {
        SoapError::Xml(e)
    }
}

/// Reusable encoder/decoder with conventional prefixes (`env`, `wsa`).
///
/// Holding one per connection/worker amortises the writer's buffer across
/// messages (perf-book guidance: reuse workhorse buffers).
pub struct SoapCodec {
    writer: Writer,
}

impl Default for SoapCodec {
    fn default() -> Self {
        SoapCodec::new()
    }
}

impl SoapCodec {
    pub fn new() -> Self {
        let config = WriterConfig::wire()
            .prefer(SOAP_ENV_NS, "env")
            .prefer(WSA_NS, "wsa");
        SoapCodec {
            writer: Writer::new(config),
        }
    }

    /// Run `f` against a per-thread codec, amortising the writer across
    /// every encode/decode on this thread. This is the codec behind
    /// [`Envelope::to_xml`] and friends.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut SoapCodec) -> R) -> R {
        thread_local! {
            static CODEC: std::cell::RefCell<SoapCodec> =
                std::cell::RefCell::new(SoapCodec::new());
        }
        CODEC.with(|c| f(&mut c.borrow_mut()))
    }

    /// Serialise an envelope to wire XML (with XML declaration).
    pub fn encode(&mut self, envelope: &Envelope) -> String {
        self.writer.write(&envelope.to_element())
    }

    /// Serialise an envelope, appending the wire bytes to `out` — the
    /// allocation-lean path used by the transports with pooled buffers.
    pub fn encode_into(&mut self, envelope: &Envelope, out: &mut Vec<u8>) {
        self.writer.write_into(&envelope.to_element(), out);
    }

    /// Parse wire XML into an envelope.
    pub fn decode(&mut self, xml: &str) -> Result<Envelope, SoapError> {
        let root = wsp_xml::parse(xml)?;
        Envelope::from_root(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_xml::Element;

    #[test]
    fn codec_uses_conventional_prefixes() {
        let mut codec = SoapCodec::new();
        let mut env = Envelope::request(Element::new("urn:x", "op"));
        env.set_addressing(crate::MessageHeaders::request("urn:to", "urn:act"));
        let xml = codec.encode(&env);
        assert!(xml.contains("<env:Envelope"), "{xml}");
        assert!(xml.contains("<wsa:To"), "{xml}");
    }

    #[test]
    fn decode_errors_map_to_faults() {
        let mut codec = SoapCodec::new();
        let xml_err = codec.decode("<<<").unwrap_err();
        assert_eq!(xml_err.to_fault().code, FaultCode::Sender);

        let version = codec.decode("<a/>").unwrap_err();
        assert_eq!(version.to_fault().code, FaultCode::VersionMismatch);

        let missing = codec
            .decode(&format!(r#"<env:Envelope xmlns:env="{SOAP_ENV_NS}"/>"#))
            .unwrap_err();
        assert_eq!(missing.to_fault().code, FaultCode::Sender);
    }

    #[test]
    fn codec_is_reusable() {
        let mut codec = SoapCodec::new();
        for i in 0..3 {
            let env =
                Envelope::request(Element::build("urn:x", "op").text(format!("{i}")).finish());
            let xml = codec.encode(&env);
            let back = codec.decode(&xml).unwrap();
            assert_eq!(back.payload().unwrap().text(), format!("{i}"));
        }
    }

    #[test]
    fn display_variants() {
        assert!(SoapError::MissingBody.to_string().contains("Body"));
        assert!(SoapError::VersionMismatch { found: "x".into() }
            .to_string()
            .contains("SOAP 1.2"));
    }
}

//! WS-Addressing (March 2004 draft): endpoint references and the SOAP
//! header binding.
//!
//! This is the specification the paper leans on to give P2PS pipes a
//! standards-compliant request/response model: a consumer creates a
//! return pipe, serialises its advertisement into an `EndpointReference`,
//! and sends it as the `ReplyTo` header (Figures 5 and 6).

use crate::constants::WSA_NS;
use crate::envelope::{Envelope, HeaderBlock};
use std::sync::atomic::{AtomicU64, Ordering};
use wsp_xml::Element;

/// An abstract reference to an endpoint: a mandatory address URI plus
/// arbitrary protocol-defined reference properties.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EndpointReference {
    /// The `wsa:Address` URI. For P2PS endpoints this is a `p2ps://` URI
    /// built from peer id and service name.
    pub address: String,
    /// `wsa:ReferenceProperties` children: arbitrary elements the
    /// protocol layer needs to dispatch on (e.g. the pipe name).
    pub reference_properties: Vec<Element>,
}

impl EndpointReference {
    pub fn new(address: impl Into<String>) -> Self {
        EndpointReference {
            address: address.into(),
            reference_properties: Vec::new(),
        }
    }

    pub fn with_property(mut self, property: Element) -> Self {
        self.reference_properties.push(property);
        self
    }

    /// Render as a WS-Addressing EPR element with the given name, e.g.
    /// `wsa:ReplyTo`.
    pub fn to_element(&self, local: &'static str) -> Element {
        let mut e = Element::new(WSA_NS, local);
        e.push_element(
            Element::build(WSA_NS, "Address")
                .text(self.address.clone())
                .finish(),
        );
        if !self.reference_properties.is_empty() {
            let mut props = Element::new(WSA_NS, "ReferenceProperties");
            for p in &self.reference_properties {
                props.push_element(p.clone());
            }
            e.push_element(props);
        }
        e
    }

    /// Parse an EPR element (any element containing `wsa:Address`).
    pub fn from_element(element: &Element) -> Option<EndpointReference> {
        let address = element.child_text(WSA_NS, "Address")?.trim().to_owned();
        let reference_properties = element
            .find(WSA_NS, "ReferenceProperties")
            .map(|props| props.child_elements().cloned().collect())
            .unwrap_or_default();
        Some(EndpointReference {
            address,
            reference_properties,
        })
    }
}

/// The WS-Addressing message information headers.
///
/// `destination_properties` is send-side only: per the WS-Addressing SOAP
/// binding (and step 3 of the paper's advert→EPR mapping) the reference
/// properties of the *destination* EPR are copied directly into the SOAP
/// header as sibling blocks. On receive they surface as ordinary header
/// blocks for the protocol layer (P2PS) to interpret.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MessageHeaders {
    /// `wsa:To` — destination URI (mandatory on requests).
    pub to: Option<String>,
    /// `wsa:Action` — URI identifying the abstract operation (mandatory).
    pub action: Option<String>,
    /// `wsa:MessageID` — unique id, needed when a reply is expected.
    pub message_id: Option<String>,
    /// `wsa:RelatesTo` — the MessageID this message responds to.
    pub relates_to: Option<String>,
    /// `wsa:ReplyTo` — where responses go; for P2PS, the return pipe.
    pub reply_to: Option<EndpointReference>,
    /// `wsa:FaultTo` — where faults go if different from `reply_to`.
    pub fault_to: Option<EndpointReference>,
    /// `wsa:From` — the sender.
    pub from: Option<EndpointReference>,
    /// Destination reference properties, copied as top-level headers.
    pub destination_properties: Vec<Element>,
}

impl MessageHeaders {
    /// Headers for a request to `to` performing `action`, with a fresh
    /// message id.
    pub fn request(to: impl Into<String>, action: impl Into<String>) -> Self {
        MessageHeaders {
            to: Some(to.into()),
            action: Some(action.into()),
            message_id: Some(generate_message_id()),
            ..MessageHeaders::default()
        }
    }

    /// Headers for a message addressed at a full EPR: the EPR's address
    /// becomes `To` and its reference properties are copied into the
    /// header (the paper's mapping, step 3).
    pub fn to_endpoint(epr: &EndpointReference, action: impl Into<String>) -> Self {
        MessageHeaders {
            to: Some(epr.address.clone()),
            action: Some(action.into()),
            message_id: Some(generate_message_id()),
            destination_properties: epr.reference_properties.clone(),
            ..MessageHeaders::default()
        }
    }

    /// Headers for the response to a request carrying `request_headers`.
    /// `RelatesTo` is set from the request's id and `To` from its
    /// `ReplyTo` address, when present.
    pub fn response_to(request_headers: &MessageHeaders, action: impl Into<String>) -> Self {
        MessageHeaders {
            to: request_headers.reply_to.as_ref().map(|r| r.address.clone()),
            action: Some(action.into()),
            message_id: Some(generate_message_id()),
            relates_to: request_headers.message_id.clone(),
            destination_properties: request_headers
                .reply_to
                .as_ref()
                .map(|r| r.reference_properties.clone())
                .unwrap_or_default(),
            ..MessageHeaders::default()
        }
    }

    pub fn with_reply_to(mut self, epr: EndpointReference) -> Self {
        self.reply_to = Some(epr);
        self
    }

    pub fn with_from(mut self, epr: EndpointReference) -> Self {
        self.from = Some(epr);
        self
    }

    pub fn with_fault_to(mut self, epr: EndpointReference) -> Self {
        self.fault_to = Some(epr);
        self
    }

    /// Append these headers to an envelope. `To` and `Action` are marked
    /// `mustUnderstand` as the binding requires.
    pub fn apply_to(&self, envelope: &mut Envelope) {
        let mut push_text = |local: &'static str, value: &Option<String>, mandatory: bool| {
            if let Some(v) = value {
                let e = Element::build(WSA_NS, local).text(v.clone()).finish();
                envelope.add_header(if mandatory {
                    HeaderBlock::mandatory(e)
                } else {
                    HeaderBlock::new(e)
                });
            }
        };
        push_text("To", &self.to, true);
        push_text("Action", &self.action, true);
        push_text("MessageID", &self.message_id, false);
        push_text("RelatesTo", &self.relates_to, false);
        for (local, epr) in [
            ("ReplyTo", &self.reply_to),
            ("FaultTo", &self.fault_to),
            ("From", &self.from),
        ] {
            if let Some(epr) = epr {
                envelope.add_header(HeaderBlock::new(epr.to_element(local)));
            }
        }
        for p in &self.destination_properties {
            envelope.add_header(HeaderBlock::new(p.clone()));
        }
    }

    /// Extract WS-Addressing headers from an envelope, if any WSA header
    /// is present at all.
    pub fn extract(envelope: &Envelope) -> Option<MessageHeaders> {
        let text = |local: &str| -> Option<String> {
            envelope
                .find_header(WSA_NS, local)
                .map(|h| h.element.text().trim().to_owned())
        };
        let epr = |local: &str| -> Option<EndpointReference> {
            envelope
                .find_header(WSA_NS, local)
                .and_then(|h| EndpointReference::from_element(&h.element))
        };
        let headers = MessageHeaders {
            to: text("To"),
            action: text("Action"),
            message_id: text("MessageID"),
            relates_to: text("RelatesTo"),
            reply_to: epr("ReplyTo"),
            fault_to: epr("FaultTo"),
            from: epr("From"),
            destination_properties: Vec::new(),
        };
        let any = headers.to.is_some()
            || headers.action.is_some()
            || headers.message_id.is_some()
            || headers.relates_to.is_some()
            || headers.reply_to.is_some()
            || headers.fault_to.is_some()
            || headers.from.is_some();
        any.then_some(headers)
    }
}

/// Generate a process-unique message id URI.
///
/// Uniqueness comes from wall-clock nanoseconds plus a process-wide
/// counter; no RNG needed and ids remain readable in logs.
pub fn generate_message_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("urn:wsp:msg:{nanos:x}-{n:x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    fn payload() -> Element {
        Element::build("urn:demo", "op").finish()
    }

    #[test]
    fn message_ids_are_unique() {
        let a = generate_message_id();
        let b = generate_message_id();
        assert_ne!(a, b);
        assert!(a.starts_with("urn:wsp:msg:"));
    }

    #[test]
    fn epr_round_trip_with_properties() {
        let epr = EndpointReference::new("p2ps://abcd/Echo").with_property(
            Element::build("urn:p2ps", "PipeName")
                .text("echoString")
                .finish(),
        );
        let elem = epr.to_element("ReplyTo");
        let back = EndpointReference::from_element(&elem).unwrap();
        assert_eq!(back, epr);
    }

    #[test]
    fn epr_without_address_is_none() {
        let e = Element::new(WSA_NS, "ReplyTo");
        assert!(EndpointReference::from_element(&e).is_none());
    }

    #[test]
    fn request_headers_round_trip() {
        let mut env = Envelope::request(payload());
        let hdrs = MessageHeaders::request("urn:to", "urn:action")
            .with_reply_to(EndpointReference::new("urn:reply"))
            .with_from(EndpointReference::new("urn:me"));
        env.set_addressing(hdrs.clone());
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        let got = back.addressing().unwrap();
        assert_eq!(got.to.as_deref(), Some("urn:to"));
        assert_eq!(got.action.as_deref(), Some("urn:action"));
        assert_eq!(got.message_id, hdrs.message_id);
        assert_eq!(got.reply_to.unwrap().address, "urn:reply");
        assert_eq!(got.from.unwrap().address, "urn:me");
    }

    #[test]
    fn to_and_action_are_must_understand() {
        let mut env = Envelope::request(payload());
        env.set_addressing(MessageHeaders::request("urn:to", "urn:action"));
        assert!(env.find_header(WSA_NS, "To").unwrap().must_understand);
        assert!(env.find_header(WSA_NS, "Action").unwrap().must_understand);
        assert!(
            !env.find_header(WSA_NS, "MessageID")
                .unwrap()
                .must_understand
        );
    }

    #[test]
    fn destination_properties_become_plain_headers() {
        let epr = EndpointReference::new("p2ps://peer/Svc")
            .with_property(Element::build("urn:p2ps", "PipeName").text("in").finish());
        let mut env = Envelope::request(payload());
        env.set_addressing(MessageHeaders::to_endpoint(&epr, "urn:act"));
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        // The pipe name surfaces as an ordinary header for P2PS to read.
        let h = back.find_header("urn:p2ps", "PipeName").unwrap();
        assert_eq!(h.element.text(), "in");
    }

    #[test]
    fn response_correlates_with_request() {
        let req = MessageHeaders::request("urn:svc", "urn:op").with_reply_to(
            EndpointReference::new("urn:return-pipe")
                .with_property(Element::build("urn:p2ps", "PipeName").text("resp").finish()),
        );
        let resp = MessageHeaders::response_to(&req, "urn:op:response");
        assert_eq!(resp.relates_to, req.message_id);
        assert_eq!(resp.to.as_deref(), Some("urn:return-pipe"));
        assert_eq!(resp.destination_properties.len(), 1);
    }

    #[test]
    fn set_addressing_replaces_previous() {
        let mut env = Envelope::request(payload());
        env.set_addressing(MessageHeaders::request("urn:first", "urn:a"));
        env.set_addressing(MessageHeaders::request("urn:second", "urn:b"));
        let got = env.addressing().unwrap();
        assert_eq!(got.to.as_deref(), Some("urn:second"));
        // No duplicated To headers.
        let to_count = env
            .headers()
            .iter()
            .filter(|h| h.element.name().is(WSA_NS, "To"))
            .count();
        assert_eq!(to_count, 1);
    }

    #[test]
    fn extract_returns_none_without_wsa_headers() {
        let env = Envelope::request(payload());
        assert!(env.addressing().is_none());
    }
}

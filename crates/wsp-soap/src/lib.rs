//! # wsp-soap
//!
//! The SOAP message layer of the WSPeer stack: envelope construction and
//! parsing, fault modelling, and the WS-Addressing headers that Section
//! IV.B of the paper uses to bridge P2PS pipes and Web service standards.
//!
//! The paper delegates this layer to Apache Axis; per `DESIGN.md` we
//! implement the equivalent envelope codec natively. The envelope model
//! follows SOAP 1.2 (the version the paper cites), and the addressing
//! model follows the March 2004 WS-Addressing draft the paper references:
//! `EndpointReference` with a mandatory `Address`, optional
//! `ReferenceProperties`, and the `To` / `Action` / `ReplyTo` /
//! `MessageID` / `RelatesTo` SOAP header binding.
//!
//! ```
//! use wsp_soap::{Envelope, MessageHeaders, EndpointReference};
//! use wsp_xml::Element;
//!
//! let payload = Element::build("urn:demo", "echoString").text("hi").finish();
//! let mut env = Envelope::request(payload);
//! env.set_addressing(
//!     MessageHeaders::request("p2ps://1234/Echo", "p2ps://1234/Echo#echoString")
//!         .with_reply_to(EndpointReference::new("p2ps://5678")),
//! );
//! let wire = env.to_xml();
//! let back = Envelope::from_xml(&wire).unwrap();
//! assert_eq!(back.addressing().unwrap().action.as_deref(),
//!            Some("p2ps://1234/Echo#echoString"));
//! ```

pub mod addressing;
pub mod codec;
pub mod constants;
pub mod envelope;
pub mod fault;

pub use addressing::{EndpointReference, MessageHeaders};
pub use codec::SoapCodec;
pub use constants::{SOAP_ENV_NS, WSA_NS};
pub use envelope::{Body, Envelope, HeaderBlock};
pub use fault::{Fault, FaultCode};

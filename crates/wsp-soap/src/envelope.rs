//! SOAP envelope: header blocks plus a body carrying a payload or fault.

use crate::addressing::MessageHeaders;
use crate::codec::{SoapCodec, SoapError};
use crate::constants::SOAP_ENV_NS;
use crate::fault::Fault;
use wsp_xml::{Element, QName};

/// One SOAP header block with its processing attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderBlock {
    pub element: Element,
    /// `env:mustUnderstand` — the receiver must fault if it cannot
    /// process this block.
    pub must_understand: bool,
    /// `env:role` — which node on the path the block targets.
    pub role: Option<String>,
}

impl HeaderBlock {
    pub fn new(element: Element) -> Self {
        HeaderBlock {
            element,
            must_understand: false,
            role: None,
        }
    }

    pub fn mandatory(element: Element) -> Self {
        HeaderBlock {
            element,
            must_understand: true,
            role: None,
        }
    }
}

/// The body of an envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// An application payload (for RPC: the operation wrapper element).
    Payload(Element),
    /// A fault response.
    Fault(Fault),
    /// `<env:Body/>` — legal, used for one-way acknowledgements.
    Empty,
}

/// A SOAP message: ordered header blocks and a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    headers: Vec<HeaderBlock>,
    body: Body,
}

impl Envelope {
    /// An envelope carrying an application payload.
    pub fn request(payload: Element) -> Self {
        Envelope {
            headers: Vec::new(),
            body: Body::Payload(payload),
        }
    }

    /// An envelope carrying a fault.
    pub fn fault(fault: Fault) -> Self {
        Envelope {
            headers: Vec::new(),
            body: Body::Fault(fault),
        }
    }

    /// An envelope with an empty body.
    pub fn empty() -> Self {
        Envelope {
            headers: Vec::new(),
            body: Body::Empty,
        }
    }

    pub fn headers(&self) -> &[HeaderBlock] {
        &self.headers
    }

    pub fn body(&self) -> &Body {
        &self.body
    }

    /// The payload element, if the body carries one.
    pub fn payload(&self) -> Option<&Element> {
        match &self.body {
            Body::Payload(e) => Some(e),
            _ => None,
        }
    }

    /// The fault, if the body carries one.
    pub fn fault_body(&self) -> Option<&Fault> {
        match &self.body {
            Body::Fault(f) => Some(f),
            _ => None,
        }
    }

    /// Append a header block.
    pub fn add_header(&mut self, block: HeaderBlock) {
        self.headers.push(block);
    }

    /// First header element named `{ns}local`.
    pub fn find_header(&self, ns: &str, local: &str) -> Option<&HeaderBlock> {
        self.headers.iter().find(|h| h.element.name().is(ns, local))
    }

    /// Remove all headers named `{ns}local`, returning how many were cut.
    pub fn remove_headers(&mut self, ns: &str, local: &str) -> usize {
        let before = self.headers.len();
        self.headers.retain(|h| !h.element.name().is(ns, local));
        before - self.headers.len()
    }

    /// Replace the WS-Addressing headers with `headers`.
    pub fn set_addressing(&mut self, headers: MessageHeaders) {
        self.headers
            .retain(|h| h.element.name().namespace() != crate::constants::WSA_NS);
        headers.apply_to(self);
    }

    /// Extract WS-Addressing headers, if any are present.
    pub fn addressing(&self) -> Option<MessageHeaders> {
        MessageHeaders::extract(self)
    }

    /// Header blocks marked `mustUnderstand` whose expanded names are not
    /// in `understood`. A conforming node faults if this is non-empty.
    pub fn not_understood<'a>(&'a self, understood: &'a [QName]) -> Vec<&'a HeaderBlock> {
        self.headers
            .iter()
            .filter(|h| h.must_understand && !understood.contains(h.element.name()))
            .collect()
    }

    /// Render as the `env:Envelope` element.
    pub fn to_element(&self) -> Element {
        let mut envelope = Element::new(SOAP_ENV_NS, "Envelope");
        if !self.headers.is_empty() {
            let mut header = Element::new(SOAP_ENV_NS, "Header");
            for block in &self.headers {
                let mut e = block.element.clone();
                if block.must_understand {
                    e.set_attribute(QName::new(SOAP_ENV_NS, "mustUnderstand"), "true");
                }
                if let Some(role) = &block.role {
                    e.set_attribute(QName::new(SOAP_ENV_NS, "role"), role.clone());
                }
                header.push_element(e);
            }
            envelope.push_element(header);
        }
        let mut body = Element::new(SOAP_ENV_NS, "Body");
        match &self.body {
            Body::Payload(p) => body.push_element(p.clone()),
            Body::Fault(f) => body.push_element(f.to_element()),
            Body::Empty => {}
        }
        envelope.push_element(body);
        envelope
    }

    /// Parse from a borrowed `env:Envelope` element.
    ///
    /// Clones what it keeps; when the caller is done with the parsed
    /// tree anyway (the codec decode path), [`Envelope::from_root`]
    /// takes the tree by value and moves the payload out instead.
    pub fn from_element(root: &Element) -> Result<Envelope, SoapError> {
        Self::from_root(root.clone())
    }

    /// Parse from an owned `env:Envelope` element, consuming it.
    ///
    /// The payload and header elements are moved out of the tree
    /// rather than deep-cloned — on the wire path this is the
    /// difference between one tree allocation per decode and two.
    pub fn from_root(mut root: Element) -> Result<Envelope, SoapError> {
        if !root.name().is(SOAP_ENV_NS, "Envelope") {
            return Err(SoapError::VersionMismatch {
                found: format!("{:?}", root.name()),
            });
        }
        let mut headers = Vec::new();
        let mut saw_header = false;
        let mut body = None;
        for node in std::mem::take(root.children_mut()) {
            let wsp_xml::Node::Element(mut child) = node else {
                continue;
            };
            if child.name().is(SOAP_ENV_NS, "Header") && !saw_header {
                saw_header = true;
                for hnode in std::mem::take(child.children_mut()) {
                    let wsp_xml::Node::Element(mut element) = hnode else {
                        continue;
                    };
                    let must_understand = matches!(
                        element.attribute(SOAP_ENV_NS, "mustUnderstand"),
                        Some("true") | Some("1")
                    );
                    let role = element.attribute(SOAP_ENV_NS, "role").map(str::to_owned);
                    // The processing attributes live on the block, not in
                    // the application view of the header element.
                    strip_env_attrs(&mut element);
                    headers.push(HeaderBlock {
                        element,
                        must_understand,
                        role,
                    });
                }
            } else if child.name().is(SOAP_ENV_NS, "Body") && body.is_none() {
                let first =
                    std::mem::take(child.children_mut())
                        .into_iter()
                        .find_map(|n| match n {
                            wsp_xml::Node::Element(e) => Some(e),
                            _ => None,
                        });
                body = Some(match first {
                    None => Body::Empty,
                    Some(first) => match Fault::from_element(&first) {
                        Some(fault) => Body::Fault(fault),
                        None => Body::Payload(first),
                    },
                });
            }
        }
        let body = body.ok_or(SoapError::MissingBody)?;
        Ok(Envelope { headers, body })
    }

    /// Serialise to wire XML. Uses the thread-local [`SoapCodec`] and a
    /// pooled buffer; hand the `String`'s bytes back to
    /// [`wsp_xml::BufPool`] after use to keep the cycle closed.
    pub fn to_xml(&self) -> String {
        let mut out = wsp_xml::BufPool::global().take();
        self.to_xml_into(&mut out);
        String::from_utf8(out).expect("writer output is UTF-8")
    }

    /// Serialise to wire XML, appending to `out` — the zero-fresh-
    /// allocation path when `out` comes from [`wsp_xml::BufPool`].
    pub fn to_xml_into(&self, out: &mut Vec<u8>) {
        SoapCodec::with_thread_local(|codec| codec.encode_into(self, out));
    }

    /// Serialise to wire XML as bytes in a pooled buffer — what the
    /// bindings put straight into a transport body, skipping the
    /// `String` detour of [`Envelope::to_xml`].
    pub fn to_xml_bytes(&self) -> Vec<u8> {
        let mut out = wsp_xml::BufPool::global().take();
        self.to_xml_into(&mut out);
        out
    }

    /// Parse wire XML.
    pub fn from_xml(xml: &str) -> Result<Envelope, SoapError> {
        SoapCodec::with_thread_local(|codec| codec.decode(xml))
    }
}

fn strip_env_attrs(element: &mut Element) {
    element
        .attributes_mut()
        .retain(|a| a.name.namespace() != SOAP_ENV_NS);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Element {
        Element::build("urn:demo", "echo").text("hello").finish()
    }

    #[test]
    fn request_round_trip() {
        let env = Envelope::request(payload());
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back.payload().unwrap().text(), "hello");
        assert!(back.headers().is_empty());
    }

    #[test]
    fn fault_round_trip() {
        let env = Envelope::fault(Fault::sender("oops"));
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        let f = back.fault_body().unwrap();
        assert_eq!(f.reason, "oops");
        assert!(back.payload().is_none());
    }

    #[test]
    fn empty_body_round_trip() {
        let env = Envelope::empty();
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back.body(), &Body::Empty);
    }

    #[test]
    fn headers_round_trip_with_attrs() {
        let mut env = Envelope::request(payload());
        let mut block = HeaderBlock::mandatory(Element::build("urn:h", "Token").text("t").finish());
        block.role = Some("urn:some-role".into());
        env.add_header(block);
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        let h = back.find_header("urn:h", "Token").unwrap();
        assert!(h.must_understand);
        assert_eq!(h.role.as_deref(), Some("urn:some-role"));
        assert_eq!(h.element.text(), "t");
        // env attributes stripped from the application view
        assert!(h.element.attributes().is_empty());
    }

    #[test]
    fn must_understand_accepts_1() {
        let xml = format!(
            r#"<env:Envelope xmlns:env="{ns}"><env:Header><t:H xmlns:t="urn:t" env:mustUnderstand="1"/></env:Header><env:Body/></env:Envelope>"#,
            ns = SOAP_ENV_NS
        );
        let env = Envelope::from_xml(&xml).unwrap();
        assert!(env.find_header("urn:t", "H").unwrap().must_understand);
    }

    #[test]
    fn not_understood_reports_unknown_mandatory_headers() {
        let mut env = Envelope::request(payload());
        env.add_header(HeaderBlock::mandatory(Element::new("urn:h", "A")));
        env.add_header(HeaderBlock::new(Element::new("urn:h", "B"))); // optional
        let known = [QName::new("urn:h", "B")];
        let missing = env.not_understood(&known);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].element.name().is("urn:h", "A"));
    }

    #[test]
    fn remove_headers_counts() {
        let mut env = Envelope::request(payload());
        env.add_header(HeaderBlock::new(Element::new("urn:h", "X")));
        env.add_header(HeaderBlock::new(Element::new("urn:h", "X")));
        assert_eq!(env.remove_headers("urn:h", "X"), 2);
        assert!(env.headers().is_empty());
    }

    #[test]
    fn wrong_envelope_namespace_is_version_mismatch() {
        let xml =
            r#"<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body/></Envelope>"#;
        assert!(matches!(
            Envelope::from_xml(xml),
            Err(SoapError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn missing_body_rejected() {
        let xml = format!(r#"<env:Envelope xmlns:env="{SOAP_ENV_NS}"/>"#);
        assert!(matches!(
            Envelope::from_xml(&xml),
            Err(SoapError::MissingBody)
        ));
    }
}

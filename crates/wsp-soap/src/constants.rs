//! Namespace URIs and well-known values used across the SOAP layer.

/// SOAP 1.2 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://www.w3.org/2003/05/soap-envelope";

/// WS-Addressing namespace (March 2004 draft, as cited by the paper).
pub const WSA_NS: &str = "http://schemas.xmlsoap.org/ws/2004/03/addressing";

/// The WS-Addressing anonymous address: "reply over the same connection".
/// Used by the HTTP binding; the P2PS binding always supplies an explicit
/// `ReplyTo` pipe instead (the whole point of Figures 5 and 6).
pub const WSA_ANONYMOUS: &str = "http://schemas.xmlsoap.org/ws/2004/03/addressing/role/anonymous";

/// SOAP 1.2 "ultimate receiver" role (the default when no role is given).
pub const ROLE_ULTIMATE_RECEIVER: &str =
    "http://www.w3.org/2003/05/soap-envelope/role/ultimateReceiver";

/// SOAP 1.2 "next" role: every node on the message path.
pub const ROLE_NEXT: &str = "http://www.w3.org/2003/05/soap-envelope/role/next";

/// Media type for SOAP 1.2 messages.
pub const CONTENT_TYPE: &str = "application/soap+xml; charset=utf-8";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_distinct() {
        assert_ne!(SOAP_ENV_NS, WSA_NS);
        assert!(WSA_ANONYMOUS.starts_with(WSA_NS));
    }
}

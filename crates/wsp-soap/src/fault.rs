//! SOAP 1.2 fault model.

use crate::constants::SOAP_ENV_NS;
use std::fmt;
use wsp_xml::{Element, QName};

/// The five SOAP 1.2 fault code values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCode {
    /// The envelope namespace was not a supported SOAP version.
    VersionMismatch,
    /// A mandatory header block was not understood.
    MustUnderstand,
    /// The message was malformed or otherwise the sender's fault.
    Sender,
    /// The receiver failed to process a well-formed message.
    Receiver,
    /// An encoding style was not supported.
    DataEncodingUnknown,
}

impl FaultCode {
    pub fn local_name(self) -> &'static str {
        match self {
            FaultCode::VersionMismatch => "VersionMismatch",
            FaultCode::MustUnderstand => "MustUnderstand",
            FaultCode::Sender => "Sender",
            FaultCode::Receiver => "Receiver",
            FaultCode::DataEncodingUnknown => "DataEncodingUnknown",
        }
    }

    pub fn from_local_name(name: &str) -> Option<Self> {
        Some(match name {
            "VersionMismatch" => FaultCode::VersionMismatch,
            "MustUnderstand" => FaultCode::MustUnderstand,
            "Sender" => FaultCode::Sender,
            "Receiver" => FaultCode::Receiver,
            "DataEncodingUnknown" => FaultCode::DataEncodingUnknown,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.local_name())
    }
}

/// A SOAP fault: code, optional application subcode, human-readable
/// reason, and optional structured detail.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    pub code: FaultCode,
    /// Application-defined subcode (e.g. a WSPeer error identifier).
    pub subcode: Option<QName>,
    pub reason: String,
    /// Boxed so `Result<_, Fault>` stays small (the error path is cold,
    /// the success path is not).
    pub detail: Option<Box<Element>>,
}

impl Fault {
    pub fn new(code: FaultCode, reason: impl Into<String>) -> Self {
        Fault {
            code,
            subcode: None,
            reason: reason.into(),
            detail: None,
        }
    }

    /// Shorthand for a `Sender` fault.
    pub fn sender(reason: impl Into<String>) -> Self {
        Fault::new(FaultCode::Sender, reason)
    }

    /// Shorthand for a `Receiver` fault.
    pub fn receiver(reason: impl Into<String>) -> Self {
        Fault::new(FaultCode::Receiver, reason)
    }

    pub fn with_subcode(mut self, subcode: QName) -> Self {
        self.subcode = Some(subcode);
        self
    }

    pub fn with_detail(mut self, detail: Element) -> Self {
        self.detail = Some(Box::new(detail));
        self
    }

    /// Render as the `env:Fault` element placed inside a SOAP body.
    pub fn to_element(&self) -> Element {
        let mut value = Element::new(SOAP_ENV_NS, "Value");
        // The fault code value is a QName in the envelope namespace; the
        // writer guarantees a prefix exists for the envelope namespace on
        // an enclosing element, but value-space prefixes are not resolved
        // by XML itself, so we emit with a self-contained declaration.
        value.push_text(format!("env:{}", self.code.local_name()));
        value.set_attribute(QName::local("xmlns:env".to_string()), SOAP_ENV_NS);

        let mut code = Element::new(SOAP_ENV_NS, "Code");
        code.push_element(value);
        if let Some(sub) = &self.subcode {
            let mut sub_value = Element::new(SOAP_ENV_NS, "Value");
            sub_value.push_text(sub.local_name().to_owned());
            sub_value.set_attribute(QName::local("ns".to_string()), sub.namespace().to_owned());
            let mut subcode = Element::new(SOAP_ENV_NS, "Subcode");
            subcode.push_element(sub_value);
            code.push_element(subcode);
        }

        let text = Element::build(SOAP_ENV_NS, "Text")
            .attr(QName::new(wsp_xml::XML_NS, "lang"), "en")
            .text(self.reason.clone())
            .finish();
        let reason = Element::build(SOAP_ENV_NS, "Reason").child(text).finish();

        let mut fault = Element::new(SOAP_ENV_NS, "Fault");
        fault.push_element(code);
        fault.push_element(reason);
        if let Some(detail) = &self.detail {
            let mut d = Element::new(SOAP_ENV_NS, "Detail");
            d.push_element((**detail).clone());
            fault.push_element(d);
        }
        fault
    }

    /// Parse an `env:Fault` element. Returns `None` if the element is not
    /// a fault at all; malformed faults come back as a generic `Receiver`
    /// fault so a broken peer cannot crash the client.
    pub fn from_element(element: &Element) -> Option<Fault> {
        if !element.name().is(SOAP_ENV_NS, "Fault") {
            return None;
        }
        let code_text = element
            .path(SOAP_ENV_NS, &["Code", "Value"])
            .map(Element::text)
            .unwrap_or_default();
        let local = code_text.rsplit(':').next().unwrap_or("").trim().to_owned();
        let code = FaultCode::from_local_name(&local).unwrap_or(FaultCode::Receiver);

        let subcode = element
            .path(SOAP_ENV_NS, &["Code", "Subcode", "Value"])
            .map(|v| {
                let ns = v.attribute_local("ns").unwrap_or("").to_owned();
                QName::new(ns, v.text().trim().to_owned())
            });

        let reason = element
            .path(SOAP_ENV_NS, &["Reason", "Text"])
            .map(Element::text)
            .unwrap_or_else(|| "unspecified fault".to_owned());

        let detail = element
            .find(SOAP_ENV_NS, "Detail")
            .and_then(|d| d.child_elements().next())
            .cloned()
            .map(Box::new);

        Some(Fault {
            code,
            subcode,
            reason,
            detail,
        })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SOAP {} fault: {}", self.code, self.reason)?;
        if let Some(sub) = &self.subcode {
            write!(f, " [{sub:?}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_names_round_trip() {
        for code in [
            FaultCode::VersionMismatch,
            FaultCode::MustUnderstand,
            FaultCode::Sender,
            FaultCode::Receiver,
            FaultCode::DataEncodingUnknown,
        ] {
            assert_eq!(FaultCode::from_local_name(code.local_name()), Some(code));
        }
        assert_eq!(FaultCode::from_local_name("Nope"), None);
    }

    #[test]
    fn fault_element_round_trip() {
        let fault = Fault::sender("bad request")
            .with_subcode(QName::new("urn:wsp", "NoSuchOperation"))
            .with_detail(Element::build("urn:wsp", "op").text("missing").finish());
        let elem = fault.to_element();
        let back = Fault::from_element(&elem).unwrap();
        assert_eq!(back.code, FaultCode::Sender);
        assert_eq!(back.reason, "bad request");
        assert_eq!(
            back.subcode.as_ref().unwrap().local_name(),
            "NoSuchOperation"
        );
        assert_eq!(back.detail.as_ref().unwrap().text(), "missing");
    }

    #[test]
    fn fault_survives_wire_round_trip() {
        let fault = Fault::receiver("boom");
        let xml = fault.to_element().to_xml();
        let parsed = wsp_xml::parse(&xml).unwrap();
        let back = Fault::from_element(&parsed).unwrap();
        assert_eq!(back.code, FaultCode::Receiver);
        assert_eq!(back.reason, "boom");
    }

    #[test]
    fn non_fault_element_yields_none() {
        let e = Element::new("urn:x", "NotAFault");
        assert!(Fault::from_element(&e).is_none());
    }

    #[test]
    fn malformed_fault_degrades_to_receiver() {
        let e = Element::new(SOAP_ENV_NS, "Fault"); // no code, no reason
        let f = Fault::from_element(&e).unwrap();
        assert_eq!(f.code, FaultCode::Receiver);
        assert!(!f.reason.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let f = Fault::sender("nope").with_subcode(QName::new("urn:x", "Sub"));
        let s = f.to_string();
        assert!(s.contains("Sender") && s.contains("nope") && s.contains("Sub"));
    }
}

//! In-tree shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, std-backed implementation of the lock types it
//! relies on: [`Mutex`], [`RwLock`] and [`Condvar`], with the
//! parking_lot calling convention (no poison `Result`s — a panicked
//! holder simply unpoisons on the next access).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(RwLockReadGuard {
                inner: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(RwLockWriteGuard {
                inner: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Outcome of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this shim's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |inner| {
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |inner| {
            let (inner, result) = self
                .inner
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            inner
        });
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the std guard inside `guard`, replacing it with the guard
/// `f` returns. std's condvar consumes and returns guards while
/// parking_lot's takes `&mut`; this adapts between the two without an
/// unguarded window (`f` re-acquires before returning).
fn replace_guard<T: ?Sized>(
    guard: &mut MutexGuard<'_, T>,
    f: impl FnOnce(std::sync::MutexGuard<'_, T>) -> std::sync::MutexGuard<'_, T>,
) {
    // SAFETY: `inner` is moved out and a replacement guard for the same
    // mutex is written back before anyone can observe the hole; `f`
    // never panics between the read and the write (std's condvar wait
    // only returns a poison error, which we unwrap into the guard).
    unsafe {
        let slot = &mut guard.inner as *mut std::sync::MutexGuard<'_, T>;
        let taken = slot.read();
        let replacement = f(taken);
        slot.write(replacement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }
}

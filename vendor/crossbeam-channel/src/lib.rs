//! In-tree shim for the `crossbeam-channel` API surface this workspace
//! uses: multi-producer multi-consumer bounded/unbounded channels with
//! blocking, timed and non-blocking send/receive.
//!
//! The build environment has no access to crates.io, so the channel is
//! implemented over `std::sync` primitives: a `Mutex<VecDeque>` with
//! two condition variables (not-empty for receivers, not-full for
//! senders on bounded channels). Disconnection follows crossbeam
//! semantics: receivers drain remaining messages after the last sender
//! drops; senders fail once the last receiver drops.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(value) | TrySendError::Disconnected(value) => value,
        }
    }
}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a bounded channel holding at most `capacity` messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    // Rendezvous (capacity 0) channels are not needed by this
    // workspace; treat them as capacity 1 to keep send/recv simple.
    channel(Some(capacity.max(1)))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half; cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Block until the message is enqueued (or fail if all receivers
    /// are gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.lock();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(capacity) if queue.len() >= capacity => {
                    queue = self
                        .shared
                        .not_full
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.lock();
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(capacity) = self.shared.capacity {
            if queue.len() >= capacity {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives (or fail once the channel is empty
    /// and all senders are gone).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .not_empty
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .not_empty
                .wait_timeout(queue, remaining.min(Duration::from_millis(50)))
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(value) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver: wake senders so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_fills_up() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn drop_of_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn drop_of_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<u32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(tx);
    }

    #[test]
    fn multi_consumer_work_sharing() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || {
            let mut n = 0;
            while rx.recv().is_ok() {
                n += 1;
            }
            n
        });
        let b = std::thread::spawn(move || {
            let mut n = 0;
            while rx2.recv().is_ok() {
                n += 1;
            }
            n
        });
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }

    #[test]
    fn blocking_send_resumes_when_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        sender.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}

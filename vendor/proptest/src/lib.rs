//! In-tree shim for the `proptest` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a miniature property-testing harness: deterministic
//! per-test RNG, composable [`Strategy`] values (maps, filters,
//! tuples, collections, regex-shaped strings, recursion, unions) and
//! the `proptest!` / `prop_assert*` macros. There is no shrinking —
//! failures report the generated value via the assertion message —
//! but generation is seeded from the test name, so failures reproduce
//! exactly on re-run.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    /// Run-time configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator seeded from the test path, so every run
    /// of a given test sees the same value stream (reproducible
    /// failures without persisted regression files).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut hasher);
            TestRng {
                state: hasher.finish() | 1,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            // SplitMix64: tiny, full-period, and plenty for test data.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// `true` roughly `num` times in `denom`.
        pub fn chance(&mut self, num: u64, denom: u64) -> bool {
            self.below(denom) < num
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no shrinking: `generate` produces one
/// value per call and test macros report failures with the plain
/// assertion message.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (panics if the predicate rejects
    /// essentially everything).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build recursive structures: each of `depth` layers chooses
    /// between the base strategy and one application of `recurse` to
    /// the layer below. `desired_size`/`expected_branch_size` are
    /// accepted for API compatibility but not used.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            strat = Union::new(vec![base.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.arms.len() as u64) as usize;
        self.arms[index].generate(rng)
    }
}

/// Values with a canonical "any value of this type" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // Bias towards boundary values, which find edge bugs
                // far more often than uniform sampling does.
                if rng.chance(1, 8) {
                    match rng.below(4) {
                        0 => 0 as $ty,
                        1 => 1 as $ty,
                        2 => <$ty>::MIN,
                        _ => <$ty>::MAX,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.chance(1, 8) {
            [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::MIN_POSITIVE,
            ][rng.below(8) as usize]
        } else {
            // Any bit pattern: exercises subnormals, NaN payloads, the lot.
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A `&'static str` is itself a strategy: a regex (subset) describing
/// the strings to generate, as in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::compile(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "collection::vec needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Error from [`string_regex`] on unsupported or malformed patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }

    impl std::error::Error for Error {}

    /// Strings matching a regex subset: literals, `[...]` classes with
    /// ranges and escapes, and the quantifiers `{n}`, `{m,n}`, `?`,
    /// `*`, `+`. Enough for every pattern in this workspace; anything
    /// else is a parse error, not silent misgeneration.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile(pattern)
    }

    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    struct Piece {
        /// Inclusive codepoint ranges the piece may draw from.
        ranges: Vec<(u32, u32)>,
        min: u32,
        max: u32,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
                let total: u64 = piece
                    .ranges
                    .iter()
                    .map(|(lo, hi)| (hi - lo + 1) as u64)
                    .sum();
                for _ in 0..count {
                    let mut index = rng.below(total);
                    for &(lo, hi) in &piece.ranges {
                        let size = (hi - lo + 1) as u64;
                        if index < size {
                            out.push(
                                char::from_u32(lo + index as u32).expect("ranges hold valid chars"),
                            );
                            break;
                        }
                        index -= size;
                    }
                }
            }
            out
        }
    }

    pub(super) fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    let (ranges, next) = parse_class(&chars, i + 1)
                        .ok_or_else(|| Error(format!("unterminated class in {pattern:?}")))?;
                    i = next;
                    ranges
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?;
                    i += 2;
                    let c = unescape(c);
                    vec![(c as u32, c as u32)]
                }
                '.' => {
                    i += 1;
                    vec![(' ' as u32, '~' as u32)]
                }
                c if "()|^$*+?{}".contains(c) => {
                    return Err(Error(format!(
                        "unsupported regex construct {c:?} in {pattern:?}"
                    )));
                }
                c => {
                    i += 1;
                    vec![(c as u32, c as u32)]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern)?;
            pieces.push(Piece { ranges, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    /// Parse a `[...]` body starting just past the `[`; returns the
    /// codepoint ranges and the index just past the closing `]`.
    fn parse_class(chars: &[char], mut i: usize) -> Option<(Vec<(u32, u32)>, usize)> {
        let mut ranges = Vec::new();
        while i < chars.len() {
            match chars[i] {
                ']' => {
                    if ranges.is_empty() {
                        return None;
                    }
                    return Some((ranges, i + 1));
                }
                c => {
                    let lo = if c == '\\' {
                        i += 1;
                        unescape(*chars.get(i)?)
                    } else {
                        c
                    };
                    // `a-z` is a range unless the `-` is last in the class.
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let mut j = i + 2;
                        let hi = if chars[j] == '\\' {
                            j += 1;
                            unescape(*chars.get(j)?)
                        } else {
                            chars[j]
                        };
                        if (hi as u32) < (lo as u32) {
                            return None;
                        }
                        ranges.push((lo as u32, hi as u32));
                        i = j + 1;
                    } else {
                        ranges.push((lo as u32, lo as u32));
                        i += 1;
                    }
                }
            }
        }
        None
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> Result<(u32, u32), Error> {
        match chars.get(*i) {
            Some('?') => {
                *i += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *i += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *i += 1;
                Ok((1, 8))
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error(format!("unterminated quantifier in {pattern:?}")))?
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse = |s: &str| {
                    s.parse::<u32>()
                        .map_err(|_| Error(format!("bad quantifier bound {s:?} in {pattern:?}")))
                };
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let n = parse(&body)?;
                        (n, n)
                    }
                };
                if max < min {
                    return Err(Error(format!(
                        "inverted quantifier {{{body}}} in {pattern:?}"
                    )));
                }
                Ok((min, max))
            }
            _ => Ok((1, 1)),
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    { #![proptest_config($config:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($config:expr) } => {};
    { ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// No shrinking in this shim, so these are plain assertions; the
/// deterministic per-test seed makes failures reproducible.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_shapes_are_respected() {
        let mut rng = TestRng::for_test("regex_shapes");
        let ncname = crate::string::string_regex("[A-Za-z_][A-Za-z0-9_.-]{0,8}").unwrap();
        for _ in 0..200 {
            let s = ncname.generate(&mut rng);
            assert!((1..=9).contains(&s.chars().count()), "bad length: {s:?}");
            let first = s.chars().next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_',
                "bad start: {s:?}"
            );
        }
        let printable = crate::string::string_regex("[ -~éü€\n\t]{1,24}").unwrap();
        for _ in 0..200 {
            let s = printable.generate(&mut rng);
            assert!(!s.is_empty() && s.chars().count() <= 24);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || "éü€\n\t".contains(c)));
        }
    }

    #[test]
    fn unsupported_regex_is_an_error_not_garbage() {
        assert!(crate::string::string_regex("(a|b)+").is_err());
        assert!(crate::string::string_regex("[unterminated").is_err());
    }

    #[test]
    fn composite_strategies_generate() {
        let mut rng = TestRng::for_test("composite");
        let strat = (
            any::<u64>(),
            crate::option::of(Just(7u8)),
            crate::collection::vec(0usize..5, 1..4),
        )
            .prop_map(|(n, opt, v)| (n, opt, v.len()));
        let mut saw_none = false;
        for _ in 0..100 {
            let (_, opt, len) = strat.generate(&mut rng);
            assert!((1..4).contains(&len));
            saw_none |= opt.is_none();
        }
        assert!(saw_none, "option::of should sometimes produce None");
    }

    #[test]
    fn union_and_filter_compose() {
        let mut rng = TestRng::for_test("union_filter");
        let strat = prop_oneof![Just(1u32), (2u32..100).prop_filter("even", |n| n % 2 == 0),];
        let mut ones = 0;
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || v % 2 == 0);
            ones += u32::from(v == 1);
        }
        assert!(ones > 10, "union arms should both fire (got {ones} ones)");
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::for_test("recursion");
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(n in 0u32..10, s in "[a-z]{1,3}") {
            prop_assume!(n != 3);
            prop_assert!(n < 10);
            prop_assert_ne!(n, 3);
            prop_assert_eq!(s.len(), s.chars().count(), "ascii only: {}", s);
        }
    }
}

//! In-tree shim for the `rand` 0.9 API surface this workspace uses:
//! [`Rng`] (`random`, `random_range`, `random_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`) and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so `StdRng` is a
//! vendored xoshiro256** generator seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the simnet/bench code
//! requires (it never relies on rand's exact value streams, only on
//! reproducibility).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {
        $(impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {
        $(impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::sample(rng) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        })*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64: deterministic, fast, and
    /// statistically strong enough for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
            let f = rng.random_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let neg: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            low |= f < 0.25;
            high |= f > 0.75;
        }
        assert!(low && high, "samples should spread across [0, 1)");
    }
}

//! In-tree shim for the `criterion` API surface this workspace uses:
//! groups, `bench_function` / `bench_with_input`, per-group sample
//! size and timing knobs, byte throughput, and the
//! `criterion_group!` / `criterion_main!` entry points.
//!
//! The build environment has no access to crates.io, so this is a
//! deliberately small wall-clock runner: it reports mean / min / max
//! per benchmark (plus MiB/s when a throughput is set) with no
//! statistical analysis, HTML reports, or baseline comparison. Good
//! enough to spot order-of-magnitude regressions, which is all the
//! wsp-bench experiments need; the paper-facing tables come from the
//! `harness` binary, not from these benches.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; create groups from it.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark name plus a parameter, e.g. `encode/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        routine(&mut bencher, input);
        self.report(&id.id, &bencher.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{id}: no samples collected", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if !mean.is_zero() => {
                let mib_s = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mib_s:.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "  {}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){rate}",
            self.name,
            samples.len(),
        );
    }
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up until the configured time elapses (at least once).
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        // Collect up to sample_size samples, capped by measurement_time
        // so slow routines don't stall the whole suite.
        let measure_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_end {
                break;
            }
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 6)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_collects_samples() {
        // The macro-generated runner must execute without panicking.
        benches();
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("encode", 64).id, "encode/64");
    }
}

//! The Triana scenario (paper Section V): discover Web services and
//! wire them into a workflow — here a text-processing pipeline whose
//! stages are three independently deployed services found by UDDI
//! search, exactly as Triana populates its toolbox.
//!
//! ```text
//! cargo run -p wsp-examples --bin triana_workflow
//! ```

use std::sync::Arc;
use wsp_core::{bindings::HttpUddiBinding, EventBus, Peer, ServiceQuery, Stage, Workflow};
use wsp_uddi::RegistryServer;
use wsp_wsdl::{OperationDef, ServiceDescriptor, Value, XsdType};

fn tool_descriptor(name: &str) -> ServiceDescriptor {
    ServiceDescriptor::new(name, format!("urn:triana:{}", name.to_lowercase()))
        .property("toolbox", "text")
        .operation(
            OperationDef::new("apply")
                .input("text", XsdType::String)
                .returns(XsdType::String),
        )
}

fn main() {
    println!("== Triana-style workflow over discovered services ==\n");
    let registry = RegistryServer::launch(0).expect("launch registry");

    // Three independent providers, each hosting one "tool".
    let mut providers = Vec::new();
    let tools: Vec<(&str, Arc<dyn wsp_wsdl::ServiceHandler>)> = vec![
        (
            "Tokenizer",
            Arc::new(|_: &str, args: &[Value]| {
                let text = args[0].as_str().unwrap_or("");
                Ok(Value::string(
                    text.split_whitespace().collect::<Vec<_>>().join("|"),
                ))
            }),
        ),
        (
            "Upcase",
            Arc::new(|_: &str, args: &[Value]| {
                Ok(Value::string(args[0].as_str().unwrap_or("").to_uppercase()))
            }),
        ),
        (
            "Bracket",
            Arc::new(|_: &str, args: &[Value]| {
                Ok(Value::string(format!(
                    "[{}]",
                    args[0].as_str().unwrap_or("")
                )))
            }),
        ),
    ];
    for (name, handler) in tools {
        let peer = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
            &registry.uri(),
            EventBus::new(),
        ));
        peer.server()
            .deploy_and_publish(tool_descriptor(name), handler)
            .unwrap_or_else(|e| panic!("deploy {name}: {e}"));
        println!("published tool {name}");
        providers.push(peer); // keep the hosts alive
    }

    // The Triana side: one peer, browsing the toolbox.
    let triana = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    let toolbox = triana
        .client()
        .locate(&ServiceQuery::any().with_property("toolbox", "text"))
        .expect("browse toolbox");
    println!("\ntoolbox now shows {} tools:", toolbox.len());
    for tool in &toolbox {
        println!("  - {} ({})", tool.name(), tool.endpoint);
    }

    // "Drag them onto the scratchpad and wire them together":
    let find = |name: &str| {
        toolbox
            .iter()
            .find(|t| t.name() == name)
            .unwrap_or_else(|| panic!("{name} not in toolbox"))
            .clone()
    };
    let workflow = Workflow::new()
        .then(Stage::new(find("Tokenizer"), "apply"))
        .then(Stage::new(find("Upcase"), "apply"))
        .then(Stage::new(find("Bracket"), "apply"));

    let input = "web services meet peer to peer";
    let run = workflow
        .run(triana.client(), Value::string(input))
        .expect("run workflow");
    println!("\ninput : {input:?}");
    for (i, out) in run.stage_outputs.iter().enumerate() {
        println!("stage {}: {:?}", i + 1, out);
    }
    println!("output: {:?}", run.output);

    registry.shutdown();
    println!("\ndone.");
}

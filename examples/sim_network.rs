//! Simulating a large P2P Web-service network — the paper's Section
//! IV.B point 3: "simulate large networks of peers publishing,
//! discovering and invoking Web services in a distributed topology"
//! (the authors planned this with NS2; here it is `wsp-simnet`).
//!
//! Builds a 400-peer rendezvous overlay on WAN links, publishes a
//! service, runs churn, fires queries, and prints discovery metrics
//! plus an NS2-style trace excerpt.
//!
//! ```text
//! cargo run -p wsp-examples --bin sim_network
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsp_p2ps::{build_overlay, P2psQuery, PeerCommand, PeerEvent, ServiceAdvertisement};
use wsp_simnet::{ChurnModel, Dur, LinkSpec, SimNet, Time, Topology};

fn main() {
    let seed = 2005u64;
    println!("== simulating a 400-peer P2PS overlay (seed {seed}) ==\n");

    let mut net: SimNet<String> = SimNet::new(seed);
    net.set_default_link(LinkSpec::wan());
    net.enable_trace(16);

    let mut rng = StdRng::seed_from_u64(seed);
    let (topology, rendezvous) = Topology::rendezvous_groups(40, 10, 4, &mut rng);
    println!(
        "overlay: {} peers in {} groups, {} rendezvous peers, connected: {}",
        topology.node_count(),
        rendezvous.len(),
        rendezvous.len(),
        topology.is_connected(),
    );
    let (_dir, handles) = build_overlay(&mut net, &topology, &rendezvous, Some(Dur::secs(10)));

    // A leaf in group 0 publishes the Echo service.
    let publisher = &handles[1];
    let advert = ServiceAdvertisement::new("Echo", publisher.peer())
        .with_pipe("echoString")
        .with_definition_pipe()
        .with_attribute("domain", "sim");
    publisher.enqueue_at(&mut net, Time::ZERO, PeerCommand::Publish(advert));

    // Rendezvous peers churn: mean 60s sessions, 10s absences (~86%).
    let churn = ChurnModel::new(Dur::secs(60), Dur::secs(10));
    println!(
        "churning rendezvous peers at {:.0}% availability\n",
        churn.availability() * 100.0
    );
    churn.apply(&mut net, &rendezvous, Time::secs(120), seed ^ 1);

    // 30 staggered queries from random leaves.
    let mut asked = Vec::new();
    for q in 0..30u64 {
        let slot = loop {
            let g: usize = rng.random_range(0..40);
            let m: usize = rng.random_range(1..10);
            let slot = g * 10 + m;
            if slot != 1 {
                break slot;
            }
        };
        let at = Time::secs(5) + Dur::millis(rng.random_range(0..110_000));
        asked.push((slot, q, at));
    }
    asked.sort_by_key(|(_, _, at)| *at);
    for (slot, token, at) in &asked {
        handles[*slot].enqueue_at(
            &mut net,
            *at,
            PeerCommand::Query {
                token: *token,
                query: P2psQuery::by_name("Echo"),
                ttl: None,
            },
        );
    }

    let end = net.run_until(Time::secs(130));
    println!(
        "simulation ran to t={end} ({} events dispatched)",
        net.events_dispatched()
    );

    // Gather results.
    let mut ok = 0usize;
    let mut latencies = Vec::new();
    for (slot, token, at) in &asked {
        let hit = handles[*slot].events().iter().find_map(|(t, e)| match e {
            PeerEvent::QueryResult { token: tk, adverts }
                if *tk == *token && !adverts.is_empty() =>
            {
                Some(*t)
            }
            _ => None,
        });
        if let Some(t) = hit {
            ok += 1;
            latencies.push((t.since(*at)).as_micros());
        }
    }
    latencies.sort_unstable();
    println!("\ndiscovery: {ok}/30 queries succeeded under churn");
    if !latencies.is_empty() {
        println!(
            "latency:   p50 {:.0} ms, max {:.0} ms",
            latencies[latencies.len() / 2] as f64 / 1000.0,
            *latencies.last().unwrap() as f64 / 1000.0
        );
    }
    println!("\nnetwork counters:");
    for (key, value) in net.metrics().counters() {
        println!("  {key:32} {value}");
    }
    println!(
        "\nNS2-style trace (last {} events):",
        net.trace().unwrap().len()
    );
    print!("{}", net.trace().unwrap().render());
    println!("\ndone.");
}

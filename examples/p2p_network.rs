//! A P2PS network of peers (the paper's Figure 4): two groups behind
//! rendezvous peers, attribute-based discovery, and SOAP invocation
//! over unidirectional pipes with `ReplyTo` return pipes.
//!
//! ```text
//! cargo run -p wsp-examples --bin p2p_network
//! ```

use std::sync::Arc;
use std::time::Duration;
use wsp_core::{
    bindings::{P2psBinding, P2psConfig},
    EventBus, Peer, ServiceQuery,
};
use wsp_p2ps::{PeerConfig, PeerId, ThreadNetwork};
use wsp_wsdl::{OperationDef, ServiceDescriptor, Value, XsdType};

fn math_descriptor(name: &str, domain: &str) -> ServiceDescriptor {
    ServiceDescriptor::new(name, format!("urn:wspeer:{}", name.to_lowercase()))
        .doc("Arithmetic over pipes")
        .property("domain", domain)
        .operation(
            OperationDef::new("apply")
                .input("a", XsdType::Double)
                .input("b", XsdType::Double)
                .returns(XsdType::Double),
        )
}

fn main() {
    println!("== WSPeer over a P2PS network ==\n");
    let network = ThreadNetwork::new();

    // Two rendezvous peers, cross-linked: group gateways.
    let rv_a = network.spawn(PeerConfig::rendezvous(PeerId(0xA000)));
    let rv_b = network.spawn(PeerConfig::rendezvous(PeerId(0xB000)));
    rv_a.add_neighbour(rv_b.id(), true);
    rv_b.add_neighbour(rv_a.id(), true);
    println!("rendezvous peers: {} and {}", rv_a.id(), rv_b.id());

    // Provider peers in group A.
    let adder_peer = network.spawn(PeerConfig::ordinary(PeerId(0xA001)));
    let multiplier_peer = network.spawn(PeerConfig::ordinary(PeerId(0xA002)));
    for p in [&adder_peer, &multiplier_peer] {
        p.add_neighbour(rv_a.id(), true);
        rv_a.add_neighbour(p.id(), false);
    }
    // Consumer peer in group B — it can only reach the providers through
    // the rendezvous mesh.
    let consumer_peer = network.spawn(PeerConfig::ordinary(PeerId(0xB001)));
    consumer_peer.add_neighbour(rv_b.id(), true);
    rv_b.add_neighbour(consumer_peer.id(), false);

    let adder_binding = P2psBinding::new(adder_peer, EventBus::new(), P2psConfig::default());
    let adder = Peer::with_binding(&adder_binding);
    adder
        .server()
        .deploy_and_publish(
            math_descriptor("Adder", "arithmetic"),
            Arc::new(|_op: &str, args: &[Value]| {
                Ok(Value::Double(
                    args[0].as_double().unwrap() + args[1].as_double().unwrap(),
                ))
            }),
        )
        .expect("deploy Adder");

    let multiplier_binding =
        P2psBinding::new(multiplier_peer, EventBus::new(), P2psConfig::default());
    let multiplier = Peer::with_binding(&multiplier_binding);
    multiplier
        .server()
        .deploy_and_publish(
            math_descriptor("Multiplier", "arithmetic"),
            Arc::new(|_op: &str, args: &[Value]| {
                Ok(Value::Double(
                    args[0].as_double().unwrap() * args[1].as_double().unwrap(),
                ))
            }),
        )
        .expect("deploy Multiplier");
    println!("providers published Adder and Multiplier into group A\n");

    // Give adverts a moment to flood the rendezvous mesh.
    std::thread::sleep(Duration::from_millis(300));

    let consumer = Peer::with_binding(&P2psBinding::new(
        consumer_peer,
        EventBus::new(),
        P2psConfig {
            discovery_window: Duration::from_millis(500),
            ..P2psConfig::default()
        },
    ));

    // Attribute-based discovery: the reason the paper chose P2PS over
    // DHT key lookups.
    println!("consumer searching for services with attribute domain=arithmetic ...");
    let services = consumer
        .client()
        .locate(&ServiceQuery::any().with_property("domain", "arithmetic"))
        .expect("discovery");
    println!("discovered {} service(s):", services.len());
    for s in &services {
        println!("  - {} at {}", s.name(), s.endpoint);
    }

    for s in &services {
        let result = consumer
            .client()
            .invoke(s, "apply", &[Value::Double(6.0), Value::Double(7.0)])
            .expect("invoke over pipes");
        println!("{}(6, 7) = {:?}", s.name(), result);
    }

    // Keep the rendezvous handles alive until here.
    drop((rv_a, rv_b));
    println!("\ndone.");
}

//! Quickstart: the paper's Figure 3 end to end, in one process.
//!
//! A UDDI registry runs on its own lightweight HTTP host; a provider
//! peer deploys and publishes the classic Echo service (launching its
//! container-less HTTP server on first deploy); a consumer peer locates
//! it through the registry and invokes it — synchronously and then
//! asynchronously through the event listener.
//!
//! ```text
//! cargo run -p wsp-examples --bin quickstart
//! ```

use std::sync::Arc;
use wsp_core::{
    bindings::HttpUddiBinding, ClientMessageEvent, DiscoveryMessageEvent, EventBus, Peer,
    PeerMessageListener, ServiceQuery,
};
use wsp_uddi::RegistryServer;
use wsp_wsdl::{ServiceDescriptor, Value};

/// An application listener: WSPeer is event driven, so this is how an
/// application normally consumes results.
struct Narrator;

impl PeerMessageListener for Narrator {
    fn on_discovery(&self, event: &DiscoveryMessageEvent) {
        match &event.result {
            Ok(services) => println!(
                "  [event] discovery #{}: {} service(s)",
                event.token,
                services.len()
            ),
            Err(e) => println!("  [event] discovery #{} failed: {e}", event.token),
        }
    }

    fn on_client_message(&self, event: &ClientMessageEvent) {
        match &event.result {
            Ok(value) => println!(
                "  [event] response #{} from {}.{}: {:?}",
                event.token, event.service, event.operation, value
            ),
            Err(e) => println!("  [event] invocation #{} failed: {e}", event.token),
        }
    }
}

fn main() {
    println!("== WSPeer quickstart (HTTP/UDDI binding) ==\n");

    // A network-reachable UDDI registry.
    let registry = RegistryServer::launch(0).expect("launch registry");
    println!("registry listening at {}", registry.uri());

    // --- provider ---------------------------------------------------------
    let provider_binding = HttpUddiBinding::with_registry_uri(&registry.uri(), EventBus::new());
    let provider = Peer::with_binding(&provider_binding);
    assert!(
        !provider_binding.host_running(),
        "no container until something is deployed"
    );

    let deployed = provider
        .server()
        .deploy_and_publish(
            ServiceDescriptor::echo(),
            Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
        )
        .expect("deploy Echo");
    println!(
        "provider deployed {} at {} (HTTP host launched lazily: {})",
        deployed.name(),
        deployed.primary_endpoint().unwrap(),
        provider_binding.host_running(),
    );

    // --- consumer ---------------------------------------------------------
    let consumer = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    consumer.add_listener(Arc::new(Narrator));

    println!("\nconsumer locating services named 'Echo%' ...");
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Echo%"))
        .expect("locate Echo");
    println!("found {} at {}", service.name(), service.endpoint);
    println!(
        "WSDL advertises {} operation(s)",
        service.wsdl.descriptor.operations.len()
    );

    // Synchronous invocation.
    let reply = consumer
        .client()
        .invoke(&service, "echoString", &[Value::string("hello, 2005")])
        .expect("invoke");
    println!("\nsync  invoke echoString(\"hello, 2005\") -> {reply:?}");

    // Asynchronous invocation: returns a correlation handle; the
    // listener reports the event with the same token, and flush() is a
    // deterministic barrier (no sleep-and-hope).
    let handle = consumer.client().invoke_async(
        service.clone(),
        "echoString",
        vec![Value::string("fire and collect later")],
    );
    println!("async invoke dispatched, token #{}", handle.token());
    consumer.dispatcher().flush();
    let stats = consumer.dispatcher().stats();
    println!(
        "dispatcher: {} submitted, {} completed, {} in flight",
        stats.submitted, stats.completed, stats.in_flight
    );

    registry.shutdown();
    println!("\ndone.");
}

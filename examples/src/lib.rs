//! Shared nothing: the example binaries (`quickstart`, `p2p_network`,
//! `triana_workflow`, `cactus_monitor`) are each self-contained; this
//! library target exists only so the package builds as a workspace
//! member. See each binary's module docs for what it demonstrates.

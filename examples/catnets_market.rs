//! The Catnets scenario (paper Section V): "exploring how economy
//! driven services interact in a decentralised topology."
//!
//! Compute providers publish a `Compute` service into a P2PS overlay
//! with a *price* attribute. Buyers discover all offers by attribute
//! search, buy from the cheapest, and providers re-price with demand —
//! re-publishing their advertisement each round (soft state makes
//! dynamic metadata natural). Watch the market clear.
//!
//! ```text
//! cargo run -p wsp-examples --bin catnets_market
//! ```

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use wsp_core::bindings::{P2psBinding, P2psConfig};
use wsp_core::{EventBus, Peer, ServiceQuery};
use wsp_p2ps::{PeerConfig, PeerId, ThreadNetwork};
use wsp_wsdl::{OperationDef, ServiceDescriptor, Value, XsdType};

struct Provider {
    name: &'static str,
    peer: Peer,
    price: Arc<Mutex<u64>>,
    sales: Arc<Mutex<u64>>,
}

fn compute_descriptor(name: &str, price: u64) -> ServiceDescriptor {
    ServiceDescriptor::new(name, format!("urn:catnets:{name}"))
        .property("market", "compute")
        .property("price", price.to_string())
        .operation(
            OperationDef::new("work")
                .input("units", XsdType::Int)
                .returns(XsdType::Int),
        )
}

fn main() {
    println!("== Catnets-style compute market over P2PS ==\n");
    let network = ThreadNetwork::new();
    let rendezvous = network.spawn(PeerConfig::rendezvous(PeerId(0xCA7)));

    // Three providers with different starting prices.
    let mut providers = Vec::new();
    for (i, (name, start_price)) in [("AlphaGrid", 12u64), ("BetaCloud", 9), ("GammaHPC", 15)]
        .into_iter()
        .enumerate()
    {
        let thread_peer = network.spawn(PeerConfig::ordinary(PeerId(0xCA70 + i as u64 + 1)));
        thread_peer.add_neighbour(rendezvous.id(), true);
        rendezvous.add_neighbour(thread_peer.id(), false);
        let binding = P2psBinding::new(thread_peer, EventBus::new(), P2psConfig::default());
        let peer = Peer::with_binding(&binding);
        let price = Arc::new(Mutex::new(start_price));
        let sales = Arc::new(Mutex::new(0u64));
        let sales_in_handler = sales.clone();
        peer.server()
            .deploy_and_publish(
                compute_descriptor(name, start_price),
                Arc::new(move |_op: &str, args: &[Value]| {
                    *sales_in_handler.lock() += 1;
                    Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
                }),
            )
            .expect("deploy provider");
        providers.push(Provider {
            name,
            peer,
            price,
            sales,
        });
    }

    // One buyer peer.
    let buyer_thread = network.spawn(PeerConfig::ordinary(PeerId(0xCA7F)));
    buyer_thread.add_neighbour(rendezvous.id(), true);
    rendezvous.add_neighbour(buyer_thread.id(), false);
    let buyer = Peer::with_binding(&P2psBinding::new(
        buyer_thread,
        EventBus::new(),
        P2psConfig {
            discovery_window: Duration::from_millis(400),
            ..P2psConfig::default()
        },
    ));
    std::thread::sleep(Duration::from_millis(200));

    for round in 1..=4 {
        println!("--- round {round} ---");
        // Discover the market by attribute.
        let offers = buyer
            .client()
            .locate(&ServiceQuery::any().with_property("market", "compute"))
            .expect("discover market");
        let mut quoted: Vec<(String, u64, wsp_core::LocatedService)> = offers
            .into_iter()
            .filter_map(|s| {
                let price = s
                    .descriptor()
                    .properties
                    .iter()
                    .find(|(k, _)| k == "price")?
                    .1
                    .parse()
                    .ok()?;
                Some((s.name().to_owned(), price, s))
            })
            .collect();
        quoted.sort_by_key(|(_, price, _)| *price);
        for (name, price, _) in &quoted {
            println!("  offer: {name:<10} at {price} credits");
        }
        let Some((winner, price, service)) = quoted.first() else {
            println!("  no offers!");
            continue;
        };
        let result = buyer
            .client()
            .invoke(service, "work", &[Value::Int(21)])
            .expect("buy compute");
        println!("  buyer purchases from {winner} at {price} credits (work(21) = {result:?})");

        // Economic feedback: the winner raises its price, losers cut.
        for provider in &providers {
            let mut price = provider.price.lock();
            if provider.name == winner {
                *price += 3;
            } else if *price > 2 {
                *price -= 2;
            }
            let new_price = *price;
            drop(price);
            // Republish the advert with the updated price attribute.
            provider
                .peer
                .server()
                .deploy(
                    compute_descriptor(provider.name, new_price),
                    Arc::new({
                        let sales = provider.sales.clone();
                        move |_op: &str, args: &[Value]| {
                            *sales.lock() += 1;
                            Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
                        }
                    }),
                )
                .expect("redeploy with new price");
            provider
                .peer
                .server()
                .publish(provider.name)
                .expect("republish");
        }
        std::thread::sleep(Duration::from_millis(250));
    }

    println!("\nfinal state:");
    for provider in &providers {
        println!(
            "  {:<10} price {:>2} credits, {} sale(s)",
            provider.name,
            *provider.price.lock(),
            *provider.sales.lock()
        );
    }
    drop(rendezvous);
    println!("\ndone.");
}

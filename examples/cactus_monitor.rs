//! The SC2004 demonstration (paper Section V): a Cactus-style
//! simulation solving a hyperbolic PDE by finite differences, with a
//! Web service *dynamically deployed at runtime* as an interface to the
//! live simulation object. Frames stream back to the monitoring client
//! "in real-time as the simulation iterates through its time steps".
//!
//! The simulation here is a real 1-D wave equation solved with the
//! leapfrog scheme; each time step produces a frame (the paper's JPEG
//! outputs become sampled waveforms).
//!
//! ```text
//! cargo run -p wsp-examples --bin cactus_monitor
//! ```

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use wsp_core::{bindings::HttpUddiBinding, EventBus, Peer, ServiceQuery, StatefulService};
use wsp_uddi::RegistryServer;
use wsp_wsdl::{OperationDef, ServiceDescriptor, Value, XsdType};

/// The stateful application object: a wave-equation simulation
/// accumulating output frames as it runs.
struct CactusSimulation {
    /// Completed frames: (step, sampled displacement field).
    frames: Mutex<Vec<(i64, Vec<f64>)>>,
    /// Current and previous displacement fields.
    state: Mutex<(Vec<f64>, Vec<f64>)>,
}

impl CactusSimulation {
    fn new(points: usize) -> Self {
        // Initial condition: a raised-cosine pulse in the middle.
        let u0: Vec<f64> = (0..points)
            .map(|i| {
                let x = i as f64 / (points - 1) as f64;
                if (0.4..=0.6).contains(&x) {
                    0.5 * (1.0 - ((x - 0.5) * 10.0 * std::f64::consts::PI).cos())
                } else {
                    0.0
                }
            })
            .collect();
        CactusSimulation {
            frames: Mutex::new(Vec::new()),
            state: Mutex::new((u0.clone(), u0)),
        }
    }

    /// One leapfrog step of u_tt = c^2 u_xx with fixed ends.
    fn step(&self, step_index: i64) {
        let courant2 = 0.25f64; // (c dt/dx)^2, stable since < 1
        let mut state = self.state.lock();
        let (current, previous) = &mut *state;
        let n = current.len();
        let mut next = vec![0.0; n];
        for i in 1..n - 1 {
            next[i] = 2.0 * current[i] - previous[i]
                + courant2 * (current[i + 1] - 2.0 * current[i] + current[i - 1]);
        }
        *previous = std::mem::replace(current, next);
        // Sample 8 points as the "visualisation" frame.
        let samples: Vec<f64> = (0..8).map(|k| current[k * (n - 1) / 7]).collect();
        self.frames.lock().push((step_index, samples));
    }
}

fn monitor_descriptor() -> ServiceDescriptor {
    ServiceDescriptor::new("CactusMonitor", "urn:wspeer:cactus")
        .doc("Live interface to a running Cactus simulation")
        .operation(OperationDef::new("frameCount").returns(XsdType::Int))
        .operation(
            OperationDef::new("frame")
                .input("index", XsdType::Int)
                .returns(XsdType::Array(Box::new(XsdType::Double))),
        )
        .operation(OperationDef::new("latestStep").returns(XsdType::Int))
}

fn main() {
    println!("== Cactus monitoring via a dynamically deployed service ==\n");
    let registry = RegistryServer::launch(0).expect("launch registry");

    // The simulation starts *before* any service exists — it is an
    // established application environment, exactly the case the paper
    // says traditional containers handle badly.
    let simulation = Arc::new(CactusSimulation::new(101));
    println!("simulation running (1-D wave equation, leapfrog scheme)");
    for s in 0..5 {
        simulation.step(s);
    }

    // Mid-run, expose the live object as a service.
    let provider = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    let handler = StatefulService::wrapping(simulation.clone())
        .operation("frameCount", |sim, _| {
            Ok(Value::Int(sim.frames.lock().len() as i64))
        })
        .operation("latestStep", |sim, _| {
            Ok(sim
                .frames
                .lock()
                .last()
                .map(|(s, _)| Value::Int(*s))
                .unwrap_or(Value::Null))
        })
        .operation("frame", |sim, args| {
            let index = args[0].as_int().unwrap_or(-1);
            let frames = sim.frames.lock();
            frames
                .get(index as usize)
                .map(|(_, samples)| {
                    Value::Array(samples.iter().map(|&v| Value::Double(v)).collect())
                })
                .ok_or_else(|| wsp_soap::Fault::sender(format!("no frame {index}")))
        })
        .into_handler();
    provider
        .server()
        .deploy_and_publish(monitor_descriptor(), handler)
        .expect("deploy monitor");
    println!("CactusMonitor deployed at runtime and published to UDDI\n");

    // Keep stepping in the background — the service reflects it live.
    let background = {
        let simulation = simulation.clone();
        std::thread::spawn(move || {
            for s in 5..30 {
                simulation.step(s);
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    // The Triana side: find the monitor and poll frames in real time.
    let triana = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    let monitor = triana
        .client()
        .locate_one(&ServiceQuery::by_name("CactusMonitor"))
        .expect("locate monitor");

    let mut seen = 0i64;
    while seen < 20 {
        let count = triana
            .client()
            .invoke(&monitor, "frameCount", &[])
            .expect("frameCount")
            .as_int()
            .unwrap_or(0);
        while seen < count {
            let frame = triana
                .client()
                .invoke(&monitor, "frame", &[Value::Int(seen)])
                .expect("fetch frame");
            let samples: Vec<String> = frame
                .as_array()
                .unwrap_or(&[])
                .iter()
                .map(|v| format!("{:+.2}", v.as_double().unwrap_or(0.0)))
                .collect();
            println!("frame {seen:>2}: [{}]", samples.join(" "));
            seen += 1;
        }
        std::thread::sleep(Duration::from_millis(30));
    }

    background.join().expect("simulation thread");
    registry.shutdown();
    println!("\nreceived {seen} frames in real time. done.");
}
